//! `tetris-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! tetris-experiments [TARGETS...] [--quick] [--instructions N] [--ranks R] [--json FILE]
//!                    [--csv DIR] [--trace OUT.jsonl] [--trace-level coarse|fine]
//!
//! TARGETS: all (default) | fig1 | fig3 | fig4 | table1 | table2 | table3 |
//!          fig10 | fig11 | fig12 | fig13 | fig14 | energy | ablation
//!
//! tetris-experiments run --scheme TAG [--workload W] [--quick] [--instructions N]
//!                    [--ranks R] [--write-cache FRAMES] [--policy lru|clock|2q]
//!                    [--trace OUT.jsonl] [--trace-level coarse|fine] [--json FILE]
//! tetris-experiments run --list-schemes
//! tetris-experiments trace WORKLOAD OUT.jsonl [--instructions N]
//! tetris-experiments replay TRACE.jsonl SCHEME
//! tetris-experiments report TRACE.jsonl [--csv DIR]
//! tetris-experiments sched-ablation [--quick] [--workload W] [--instructions N]
//!                    [--ranks R] [--trace-dir DIR] [--csv DIR] [--assert]
//! tetris-experiments cache-sweep [--quick] [--workload W]... [--frames LIST]
//!                    [--policy TAG]... [--instructions N] [--trace-dir DIR] [--csv DIR]
//! tetris-experiments bench-compare BASE.json FRESH.json [--tolerance PCT] [--k N]
//!                    [--md OUT.md] [--json OUT.json]
//! ```
//!
//! `run` simulates one (workload, scheme) cell and prints a one-line
//! summary — the CI `scheme-matrix` job runs every registered scheme tag
//! through it (`--list-schemes` prints the tags, one per line).
//! `--trace` records a telemetry trace of one run (vips × Tetris, the
//! paper's write-heaviest pairing) to a JSONL file; `report` renders such
//! a file into per-bank utilization and queue-depth percentile tables.
//! `run --write-cache FRAMES --policy TAG` puts the DRAM write-cache tier
//! in front of the controller; `cache-sweep` tables the tier's hit rate,
//! coalesce ratio and drain behaviour per (frame budget × policy ×
//! workload) cell, recording one trace per cell (the CI `cache-sweep`
//! job runs the quick matrix).
//! `sched-ablation` runs the same workload under the fixed and the
//! adaptive controller scheduling policy and prints the delta table;
//! `--assert` exits nonzero if the adaptive policy regresses (the CI
//! `sched-regression` job runs exactly this). `bench-compare` diffs two
//! `BENCH_<n>.json` perf snapshots (produced by `pcm-bench snapshot`) and
//! exits nonzero when a bench regresses beyond `max(tolerance%, k·MAD)`
//! or goes missing.

use pcm_memsim::SystemConfig;
/// Print to stdout, exiting quietly if the consumer closed the pipe
/// (`tetris-experiments fig3 | head` must not panic).
fn out(text: std::fmt::Arguments<'_>) {
    use std::io::Write;
    let mut stdout = std::io::stdout().lock();
    if writeln!(stdout, "{text}").is_err() {
        std::process::exit(0);
    }
}

macro_rules! outln {
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

use pcm_schemes::SchemeConfig;
use pcm_types::{LineDemand, PowerParams, UnitDemand};
use pcm_workloads::ALL_PROFILES;
use tetris_experiments::figures::{self, MatrixView};
use tetris_experiments::report::Table;
use tetris_experiments::{ablation, run_matrix, RunConfig, SchemeKind};
use tetris_write::{analyze, render_gantt, TetrisConfig};

fn print_fig4_gantt() {
    // The paper's worked example: budget 32 per chip, write-1 loads
    // 8,7,7,6,6,6,5,3 and write-0 loads 0,1,1,2,3,2,2,5.
    let mut cfg = TetrisConfig::paper_baseline();
    cfg.scheme.power = PowerParams {
        l_ratio: 2,
        budget_per_bank: 32,
        chips_per_bank: 4,
    };
    let demand = LineDemand::from_units(&[
        UnitDemand::new(8, 0),
        UnitDemand::new(7, 1),
        UnitDemand::new(7, 1),
        UnitDemand::new(6, 2),
        UnitDemand::new(6, 3),
        UnitDemand::new(6, 2),
        UnitDemand::new(5, 2),
        UnitDemand::new(3, 5),
    ]);
    let a = analyze(&demand, &cfg).expect("fig4 demand packs");
    outln!("== Fig. 4 — chip-level schedule of the paper's worked example ==");
    outln!("{}", render_gantt(&a, 8));
}

/// Print a table and, when `--csv DIR` was given, also write it as CSV.
fn emit(t: &Table, csv_dir: &Option<String>) {
    outln!("{t}");
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
        let path = format!("{dir}/{}.csv", t.slug());
        std::fs::write(&path, t.to_csv()).expect("write csv");
    }
}

/// `trace WORKLOAD OUT.jsonl`: record a synthetic trace to disk.
fn cmd_trace(workload: &str, out: &str, instructions: u64) {
    use pcm_memsim::VecTrace;
    use pcm_workloads::generator::{GeneratorConfig, SyntheticParsec};
    use pcm_workloads::trace::write_trace;
    let p = pcm_workloads::WorkloadProfile::by_name(workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload}");
        std::process::exit(1);
    });
    let cfg = GeneratorConfig {
        instructions_per_core: instructions,
        ..Default::default()
    };
    let mut gen = SyntheticParsec::new(p, cfg);
    let trace = VecTrace::capture(&mut gen, cfg.cores);
    let mut file = std::io::BufWriter::new(std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        std::process::exit(1);
    }));
    write_trace(&mut file, trace.ops()).expect("write trace");
    let ops: usize = trace.ops().iter().map(Vec::len).sum();
    eprintln!("wrote {ops} ops for {} cores to {out}", trace.ops().len());
}

/// Canonical scheme tags, slash-joined for error hints — derived from the
/// registry so a newly registered scheme shows up here for free.
fn scheme_tag_hint() -> String {
    pcm_schemes::SchemeSelect::ALL
        .iter()
        .map(|s| s.tag())
        .collect::<Vec<_>>()
        .join("/")
}

/// `run --scheme TAG`: simulate one (workload, scheme) cell and print a
/// one-line summary. This is the CI scheme-matrix entry point: one
/// invocation per registered tag, optionally recording a telemetry trace
/// for `report` to render.
fn cmd_run(args: &[String]) {
    let mut scheme: Option<String> = None;
    let mut workload = "vips".to_string();
    let mut quick = false;
    let mut instructions: Option<u64> = None;
    let mut ranks: Option<u32> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_level = pcm_telemetry::TraceDetail::Fine;
    let mut json_path: Option<String> = None;
    let mut write_cache: Option<usize> = None;
    let mut policy = pcm_memsim::PolicySelect::Lru;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--list-schemes" => {
                for s in pcm_schemes::SchemeSelect::ALL {
                    outln!("{}", s.tag());
                }
                return;
            }
            "--quick" => quick = true,
            "--scheme" => {
                i += 1;
                scheme = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--scheme needs a tag"))
                        .clone(),
                );
            }
            "--workload" => {
                i += 1;
                workload = args
                    .get(i)
                    .unwrap_or_else(|| usage_error("--workload needs a name"))
                    .clone();
            }
            "--instructions" => {
                i += 1;
                instructions = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage_error("--instructions needs a number")),
                );
            }
            "--ranks" => {
                i += 1;
                ranks = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|r: &u32| r.is_power_of_two())
                        .unwrap_or_else(|| usage_error("--ranks needs a power-of-two number")),
                );
            }
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--trace needs a path"))
                        .clone(),
                );
            }
            "--trace-level" => {
                i += 1;
                trace_level = args
                    .get(i)
                    .and_then(|v| pcm_telemetry::TraceDetail::parse(v))
                    .unwrap_or_else(|| usage_error("--trace-level needs 'coarse' or 'fine'"));
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--json needs a path"))
                        .clone(),
                );
            }
            "--write-cache" => {
                i += 1;
                write_cache = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage_error("--write-cache needs a frame count")),
                );
            }
            "--policy" => {
                i += 1;
                policy = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error("--policy needs lru, clock or 2q"));
            }
            other => usage_error(&format!("unknown run flag '{other}'")),
        }
        i += 1;
    }
    let scheme =
        scheme.unwrap_or_else(|| usage_error("run needs --scheme TAG (or --list-schemes)"));
    let kind = SchemeKind::parse(&scheme).unwrap_or_else(|| {
        eprintln!("unknown scheme {scheme}; try {}", scheme_tag_hint());
        std::process::exit(1);
    });
    let profile = pcm_workloads::WorkloadProfile::by_name(&workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload}");
        std::process::exit(1);
    });
    let mut builder = RunConfig::builder();
    if quick {
        builder = builder.quick();
    }
    if let Some(n) = instructions {
        builder = builder.instructions_per_core(n);
    }
    if let Some(r) = ranks {
        builder = builder.ranks(r);
    }
    let mut cfg = builder
        .build()
        .unwrap_or_else(|e| usage_error(&e.to_string()));
    if let Some(frames) = write_cache {
        cfg.system.write_cache = if frames == 0 {
            pcm_memsim::WriteCacheConfig::disabled()
        } else {
            pcm_memsim::WriteCacheConfig::with_frames(frames, policy)
        };
        cfg.system
            .validate()
            .unwrap_or_else(|e| usage_error(&e.to_string()));
    }
    eprintln!(
        "run: {} × {}, {} instructions/core, {} rank(s)…",
        profile.name,
        kind.name(),
        cfg.instructions_per_core,
        cfg.system.mem.org.ranks
    );
    if cfg.system.write_cache.enabled() {
        eprintln!(
            "write cache: {} frames, {} policy, drain watermark {}",
            cfg.system.write_cache.frames,
            cfg.system.write_cache.policy,
            cfg.system.write_cache.drain_watermark
        );
    }
    let r = if let Some(out) = &trace_path {
        let (r, written) = tetris_experiments::run_one_to_file(
            profile,
            kind,
            &cfg,
            std::path::Path::new(out),
            trace_level,
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot trace to {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("{written} telemetry events → {out}");
        r
    } else {
        tetris_experiments::run_one(profile, kind, &cfg)
    };
    outln!(
        "{} × {}: runtime {:.1} µs, IPC {:.3}, read {:.1} ns, write {:.1} ns, {} reads / {} writes, {} sets / {} resets",
        profile.name,
        kind.name(),
        r.runtime.as_ns_f64() / 1000.0,
        r.ipc(),
        r.read_latency.mean_ns(),
        r.write_latency.mean_ns(),
        r.mem_reads,
        r.mem_writes,
        r.cell_sets,
        r.cell_resets
    );
    if let Some(path) = &json_path {
        let json = tetris_experiments::report::results_to_json(std::slice::from_ref(&r));
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
}

/// `cache-sweep`: table the DRAM write-cache tier per (frame budget ×
/// replacement policy × workload) cell — the CI `cache-sweep` job runs
/// the quick 3-policy × 2-workload matrix through this.
fn cmd_cache_sweep(args: &[String]) {
    use pcm_memsim::PolicySelect;
    let mut quick = false;
    let mut instructions: Option<u64> = None;
    let mut workloads: Vec<String> = Vec::new();
    let mut frames: Vec<usize> = Vec::new();
    let mut policies: Vec<PolicySelect> = Vec::new();
    let mut trace_dir = "target/cache-sweep".to_string();
    let mut csv_dir: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--instructions" => {
                i += 1;
                instructions = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage_error("--instructions needs a number")),
                );
            }
            "--workload" => {
                i += 1;
                workloads.push(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--workload needs a name"))
                        .clone(),
                );
            }
            "--frames" => {
                i += 1;
                let list = args
                    .get(i)
                    .unwrap_or_else(|| usage_error("--frames needs a comma-separated list"));
                for part in list.split(',') {
                    frames.push(
                        part.trim()
                            .parse()
                            .unwrap_or_else(|_| usage_error("--frames entries must be numbers")),
                    );
                }
            }
            "--policy" => {
                i += 1;
                policies.push(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage_error("--policy needs lru, clock or 2q")),
                );
            }
            "--trace-dir" => {
                i += 1;
                trace_dir = args
                    .get(i)
                    .unwrap_or_else(|| usage_error("--trace-dir needs a directory"))
                    .clone();
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--csv needs a directory"))
                        .clone(),
                );
            }
            other => usage_error(&format!("unknown cache-sweep flag '{other}'")),
        }
        i += 1;
    }
    if workloads.is_empty() {
        workloads = vec!["vips".to_string(), "ferret".to_string()];
    }
    if frames.is_empty() {
        frames = if quick { vec![64] } else { vec![64, 256, 1024] };
    }
    if policies.is_empty() {
        policies = PolicySelect::ALL.to_vec();
    }
    let profiles: Vec<pcm_workloads::WorkloadProfile> = workloads
        .iter()
        .map(|w| {
            *pcm_workloads::WorkloadProfile::by_name(w).unwrap_or_else(|| {
                eprintln!("unknown workload {w}");
                std::process::exit(1);
            })
        })
        .collect();
    let mut builder = RunConfig::builder();
    if quick {
        builder = builder.quick();
    }
    if let Some(n) = instructions {
        builder = builder.instructions_per_core(n);
    }
    let cfg = builder
        .build()
        .unwrap_or_else(|e| usage_error(&e.to_string()));
    eprintln!(
        "cache-sweep: {} workload(s) × {} frame budget(s) × {} policy(ies), {} instructions/core…",
        profiles.len(),
        frames.len(),
        policies.len(),
        cfg.instructions_per_core
    );
    let cells = tetris_experiments::run_cache_sweep(
        &profiles,
        &frames,
        &policies,
        &cfg,
        std::path::Path::new(&trace_dir),
    )
    .unwrap_or_else(|e| {
        eprintln!("cache-sweep failed: {e}");
        std::process::exit(1);
    });
    eprintln!("{} cell(s), traces under {trace_dir}", cells.len());
    emit(&tetris_experiments::cache_sweep_table(&cells), &csv_dir);
}

/// `replay TRACE.jsonl SCHEME`: run a recorded trace through the system.
fn cmd_replay(path: &str, scheme: &str) {
    use pcm_memsim::cpu::VecTrace;
    use pcm_memsim::{System, SystemConfig, UniformRandomContent};
    use pcm_workloads::trace::read_trace;
    let kind = SchemeKind::parse(scheme).unwrap_or_else(|| {
        eprintln!("unknown scheme {scheme}; try {}", scheme_tag_hint());
        std::process::exit(1);
    });
    let file = std::io::BufReader::new(std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open trace {path}: {e}");
        std::process::exit(1);
    }));
    let trace = read_trace(file).unwrap_or_else(|e| {
        eprintln!("cannot parse trace {path}: {e}");
        std::process::exit(1);
    });
    if trace.is_empty() {
        eprintln!("trace {path} contains no cores");
        std::process::exit(1);
    }
    let mut cfg = SystemConfig::paper_baseline();
    cfg.cores = trace.len();
    cfg.mem.select = kind.select();
    let mut sys = System::build(cfg)
        .expect("valid config")
        .with_trace(Box::new(VecTrace::new(trace)))
        .with_content(Box::new(UniformRandomContent::new(7)));
    sys.set_workload_name(path);
    let r = sys.run();
    outln!(
        "{}: runtime {:.1} µs, IPC {:.3}, read {:.1} ns, write {:.1} ns, {} reads / {} writes",
        kind.name(),
        r.runtime.as_ns_f64() / 1000.0,
        r.ipc(),
        r.read_latency.mean_ns(),
        r.write_latency.mean_ns(),
        r.mem_reads,
        r.mem_writes
    );
}

/// `report TRACE.jsonl`: summarize a recorded telemetry trace. Ranked
/// (tagged) traces additionally render a per-rank rollup and per-rank
/// tables; plain single-rank traces render exactly as before.
fn cmd_report(path: &str, csv_dir: &Option<String>) {
    use pcm_telemetry::{read_tagged_events, TraceSummary};
    let file = std::io::BufReader::new(std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open trace {path}: {e}");
        std::process::exit(1);
    }));
    let tagged = read_tagged_events(file).unwrap_or_else(|e| {
        eprintln!("cannot parse trace {path}: {e}");
        std::process::exit(1);
    });
    if tagged.is_empty() {
        eprintln!("trace {path} contains no events");
        std::process::exit(1);
    }
    let ranks = TraceSummary::by_rank(&tagged);
    if ranks.len() == 1 {
        emit(
            &tetris_experiments::report::trace_bank_table(&ranks[0]),
            csv_dir,
        );
        emit(
            &tetris_experiments::report::trace_queue_table(&ranks[0]),
            csv_dir,
        );
        return;
    }
    emit(
        &tetris_experiments::report::rank_util_table(&ranks),
        csv_dir,
    );
    let merged = TraceSummary::merged(&ranks);
    emit(
        &tetris_experiments::report::trace_bank_table(&merged),
        csv_dir,
    );
    emit(
        &tetris_experiments::report::trace_queue_table(&merged),
        csv_dir,
    );
    for (i, s) in ranks.iter().enumerate() {
        emit(
            &tetris_experiments::report::trace_bank_table_for_rank(s, i as u32),
            csv_dir,
        );
        emit(
            &tetris_experiments::report::trace_queue_table_for_rank(s, i as u32),
            csv_dir,
        );
    }
}

/// `--trace OUT.jsonl`: run vips × Tetris once, streaming rank-tagged
/// JSONL telemetry through the async background writer.
fn run_traced(out: &str, level: pcm_telemetry::TraceDetail, cfg: &RunConfig) {
    let vips = pcm_workloads::WorkloadProfile::by_name("vips").expect("vips profile exists");
    let ranks = cfg.system.mem.org.ranks;
    eprintln!(
        "tracing vips × Tetris ({} instructions/core, {ranks} rank(s), {:?} detail) to {out}…",
        cfg.instructions_per_core, level
    );
    let (r, written) = tetris_experiments::run_one_to_file(
        vips,
        SchemeKind::Tetris,
        cfg,
        std::path::Path::new(out),
        level,
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot trace to {out}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "traced run done: runtime {:.1} µs, {} reads / {} writes, {written} events — render with `tetris-experiments report {out}`",
        r.runtime.as_ns_f64() / 1000.0,
        r.mem_reads,
        r.mem_writes
    );
}

/// `sched-ablation`: fixed vs adaptive scheduling head-to-head.
fn cmd_sched_ablation(args: &[String]) {
    let mut workload = "vips".to_string();
    let mut quick = false;
    let mut instructions: Option<u64> = None;
    let mut ranks: Option<u32> = None;
    let mut trace_dir = "sched-traces".to_string();
    let mut csv_dir: Option<String> = None;
    let mut assert_no_regression = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--assert" => assert_no_regression = true,
            "--ranks" => {
                i += 1;
                ranks = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|r: &u32| r.is_power_of_two())
                        .unwrap_or_else(|| usage_error("--ranks needs a power-of-two number")),
                );
            }
            "--workload" => {
                i += 1;
                workload = args
                    .get(i)
                    .unwrap_or_else(|| usage_error("--workload needs a name"))
                    .clone();
            }
            "--instructions" => {
                i += 1;
                instructions = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage_error("--instructions needs a number")),
                );
            }
            "--trace-dir" => {
                i += 1;
                trace_dir = args
                    .get(i)
                    .unwrap_or_else(|| usage_error("--trace-dir needs a directory"))
                    .clone();
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--csv needs a directory"))
                        .clone(),
                );
            }
            other => usage_error(&format!("unknown sched-ablation flag '{other}'")),
        }
        i += 1;
    }
    let profile = pcm_workloads::WorkloadProfile::by_name(&workload).unwrap_or_else(|| {
        eprintln!("unknown workload {workload}");
        std::process::exit(1);
    });
    let mut builder = RunConfig::builder();
    if quick {
        builder = builder.quick();
    }
    if let Some(n) = instructions {
        builder = builder.instructions_per_core(n);
    }
    if let Some(r) = ranks {
        builder = builder.ranks(r);
    }
    let cfg = builder
        .build()
        .unwrap_or_else(|e| usage_error(&e.to_string()));
    eprintln!(
        "sched-ablation: {} × Tetris, {} instructions/core, {} rank(s), fixed vs adaptive…",
        profile.name, cfg.instructions_per_core, cfg.system.mem.org.ranks
    );
    let out =
        tetris_experiments::run_sched_ablation(profile, &cfg, std::path::Path::new(&trace_dir))
            .unwrap_or_else(|e| {
                eprintln!("sched-ablation failed: {e}");
                std::process::exit(1);
            });
    eprintln!(
        "traces: {} and {}",
        out.base_trace.display(),
        out.adaptive_trace.display()
    );
    emit(
        &tetris_experiments::delta_table(&out.base, &out.adaptive),
        &csv_dir,
    );
    if out.adaptive_ranks.len() > 1 {
        emit(
            &tetris_experiments::report::rank_util_table(&out.adaptive_ranks),
            &csv_dir,
        );
    }
    let violations = tetris_experiments::regression_check(&out.base, &out.adaptive);
    if violations.is_empty() {
        outln!("regression check: OK — adaptive is no worse than fixed");
    } else {
        for v in &violations {
            outln!("regression check: FAIL — {v}");
        }
        if assert_no_regression {
            std::process::exit(1);
        }
    }
}

/// `bench-compare BASE.json FRESH.json`: diff two perf snapshots and gate.
fn cmd_bench_compare(args: &[String]) {
    use pcm_types::perf::{BenchSnapshot, GatePolicy};
    use pcm_types::JsonCodec;

    let mut paths: Vec<&String> = Vec::new();
    let mut policy = GatePolicy::default();
    let mut md_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                policy.tolerance_pct = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage_error("--tolerance needs a percentage"));
            }
            "--k" => {
                i += 1;
                policy.k_mad = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|k: &f64| k.is_finite() && *k >= 0.0)
                    .unwrap_or_else(|| usage_error("--k needs a multiplier"));
            }
            "--md" => {
                i += 1;
                md_out = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--md needs a path"))
                        .clone(),
                );
            }
            "--json" => {
                i += 1;
                json_out = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--json needs a path"))
                        .clone(),
                );
            }
            flag if flag.starts_with('-') => {
                usage_error(&format!("unknown bench-compare flag `{flag}`"))
            }
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    let [base_path, fresh_path] = paths[..] else {
        usage_error("bench-compare needs BASE.json and FRESH.json");
    };
    let load = |path: &str| -> BenchSnapshot {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read snapshot {path}: {e}");
            std::process::exit(1);
        });
        let snap = BenchSnapshot::from_json_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse snapshot {path}: {e}");
            std::process::exit(1);
        });
        if let Err(e) = snap.validate() {
            eprintln!("invalid snapshot {path}: {e}");
            std::process::exit(1);
        }
        snap
    };
    let base = load(base_path);
    let fresh = load(fresh_path);
    let report = tetris_experiments::compare(&base, &fresh, policy);
    outln!("{}", report.markdown());
    if let Some(path) = md_out {
        std::fs::write(&path, report.markdown()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    if let Some(path) = json_out {
        let text = report.to_json().to_string_pretty() + "\n";
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }
    if report.has_failures() {
        std::process::exit(1);
    }
}

/// Exit with a clean usage error instead of a panic backtrace.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg} (see --help)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Subcommands with positional arguments first.
    match args.first().map(String::as_str) {
        Some("run") => {
            cmd_run(&args);
            return;
        }
        Some("trace") => {
            let instructions = args
                .iter()
                .position(|a| a == "--instructions")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(1_000_000);
            cmd_trace(
                args.get(1)
                    .unwrap_or_else(|| usage_error("trace needs a workload")),
                args.get(2)
                    .unwrap_or_else(|| usage_error("trace needs an output path")),
                instructions,
            );
            return;
        }
        Some("replay") => {
            cmd_replay(
                args.get(1)
                    .unwrap_or_else(|| usage_error("replay needs a trace path")),
                args.get(2)
                    .unwrap_or_else(|| usage_error("replay needs a scheme")),
            );
            return;
        }
        Some("report") => {
            let csv_dir = args
                .iter()
                .position(|a| a == "--csv")
                .and_then(|i| args.get(i + 1))
                .cloned();
            cmd_report(
                args.get(1)
                    .unwrap_or_else(|| usage_error("report needs a trace path")),
                &csv_dir,
            );
            return;
        }
        Some("sched-ablation") => {
            cmd_sched_ablation(&args);
            return;
        }
        Some("cache-sweep") => {
            cmd_cache_sweep(&args);
            return;
        }
        Some("bench-compare") => {
            cmd_bench_compare(&args);
            return;
        }
        _ => {}
    }
    let mut targets: Vec<String> = Vec::new();
    let mut quick = false;
    let mut instructions: Option<u64> = None;
    let mut ranks: Option<u32> = None;
    let mut json_path: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_level = pcm_telemetry::TraceDetail::Fine;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--instructions" => {
                i += 1;
                instructions = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage_error("--instructions needs a number")),
                );
            }
            "--ranks" => {
                i += 1;
                ranks = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|r: &u32| r.is_power_of_two())
                        .unwrap_or_else(|| usage_error("--ranks needs a power-of-two number")),
                );
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--json needs a path"))
                        .clone(),
                );
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--csv needs a directory"))
                        .clone(),
                );
            }
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .unwrap_or_else(|| usage_error("--trace needs a path"))
                        .clone(),
                );
            }
            "--trace-level" => {
                i += 1;
                trace_level = args
                    .get(i)
                    .and_then(|v| pcm_telemetry::TraceDetail::parse(v))
                    .unwrap_or_else(|| usage_error("--trace-level needs 'coarse' or 'fine'"));
            }
            "--help" | "-h" => {
                outln!(
                    "usage: tetris-experiments [all|fig1|fig3|fig4|fig10|fig11|fig12|fig13|fig14|table1|table2|table3|energy|ablation]... [--quick] [--instructions N] [--ranks R] [--json FILE] [--csv DIR] [--trace OUT.jsonl] [--trace-level coarse|fine]"
                );
                outln!("       tetris-experiments run --scheme TAG [--workload W] [--quick] [--instructions N] [--ranks R] [--write-cache FRAMES] [--policy lru|clock|2q] [--trace OUT.jsonl] [--trace-level coarse|fine] [--json FILE]");
                outln!("       tetris-experiments run --list-schemes");
                outln!("       tetris-experiments trace WORKLOAD OUT.jsonl [--instructions N]");
                outln!("       tetris-experiments replay TRACE.jsonl SCHEME");
                outln!("       tetris-experiments report TRACE.jsonl [--csv DIR]");
                outln!("       tetris-experiments sched-ablation [--quick] [--workload W] [--instructions N] [--ranks R] [--trace-dir DIR] [--csv DIR] [--assert]");
                outln!("       tetris-experiments cache-sweep [--quick] [--workload W]... [--frames LIST] [--policy TAG]... [--instructions N] [--trace-dir DIR] [--csv DIR]");
                return;
            }
            t => targets.push(t.to_string()),
        }
        i += 1;
    }
    let explicit_targets = !targets.is_empty();
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    const KNOWN: [&str; 15] = [
        "all", "fig1", "fig3", "fig4", "fig10", "fig11", "fig12", "fig13", "fig14", "table1",
        "table2", "table3", "energy", "ablation", "gantt",
    ];
    for t in &targets {
        if !KNOWN.contains(&t.as_str()) {
            usage_error(&format!("unknown target '{t}'"));
        }
    }
    let all = targets.iter().any(|t| t == "all");
    let want = |t: &str| all || targets.iter().any(|x| x == t);

    let mut builder = RunConfig::builder();
    if quick {
        builder = builder.quick();
    }
    if let Some(n) = instructions {
        builder = builder.instructions_per_core(n);
    }
    if let Some(r) = ranks {
        builder = builder.ranks(r);
    }
    let cfg = builder
        .build()
        .unwrap_or_else(|e| usage_error(&e.to_string()));

    // A traced run is its own artifact: record it first, and unless the
    // user also asked for figures/tables explicitly, stop there.
    if let Some(out) = &trace_path {
        run_traced(out, trace_level, &cfg);
        if !explicit_targets {
            return;
        }
    }
    let scheme_cfg = SchemeConfig::paper_baseline();
    let sample_writes = if quick { 500 } else { 3_000 };

    // Static artifacts first (no simulation needed).
    if want("fig1") {
        emit(&figures::fig1(&scheme_cfg), &csv_dir);
    }
    if want("table2") {
        emit(&figures::table2(&SystemConfig::paper_baseline()), &csv_dir);
    }
    if want("fig3") {
        emit(&figures::fig3(sample_writes, 7), &csv_dir);
    }
    if want("fig4") {
        print_fig4_gantt();
    }

    // System-level figures share one run matrix.
    let needs_matrix = [
        "fig10", "fig11", "fig12", "fig13", "fig14", "table1", "table3", "energy",
    ]
    .iter()
    .any(|t| want(t));
    if needs_matrix {
        eprintln!(
            "running {} simulations ({} instructions/core)…",
            ALL_PROFILES.len() * SchemeKind::COMPARED.len(),
            cfg.instructions_per_core
        );
        let results = run_matrix(&ALL_PROFILES, &SchemeKind::COMPARED, &cfg);
        let m = MatrixView::new(&results, &ALL_PROFILES, &SchemeKind::COMPARED);
        if want("table1") {
            emit(&figures::table1(&m), &csv_dir);
        }
        if want("table3") {
            emit(&figures::table3(Some(&m)), &csv_dir);
        }
        if want("fig10") {
            emit(&figures::fig10(&m, &scheme_cfg), &csv_dir);
        }
        if want("fig11") {
            emit(&figures::fig11(&m), &csv_dir);
        }
        if want("fig12") {
            emit(&figures::fig12(&m), &csv_dir);
        }
        if want("fig13") {
            emit(&figures::fig13(&m), &csv_dir);
        }
        if want("fig14") {
            emit(&figures::fig14(&m), &csv_dir);
        }
        if want("energy") {
            emit(&figures::energy_figure(&m), &csv_dir);
            emit(&figures::tail_latency_figure(&m, "ferret"), &csv_dir);
            emit(
                &ablation::wear_comparison(&results, &ALL_PROFILES, &SchemeKind::COMPARED),
                &csv_dir,
            );
        }
        if let Some(path) = &json_path {
            let json = tetris_experiments::report::results_to_json(&results);
            std::fs::write(path, json).expect("write results JSON");
            eprintln!("wrote {path}");
        }
    }

    if want("ablation") {
        emit(
            &ablation::packing_ablation(sample_writes as usize, 3),
            &csv_dir,
        );
        emit(&ablation::write_pausing_study(&cfg), &csv_dir);
        emit(
            &ablation::batching_study(sample_writes as usize, 21),
            &csv_dir,
        );
        emit(&ablation::system_batching_study(&cfg), &csv_dir);
        emit(&ablation::bank_parallelism_sweep(&cfg), &csv_dir);
        emit(&ablation::subarray_sweep(&cfg), &csv_dir);
        emit(&ablation::budget_sweep(sample_writes as usize, 4), &csv_dir);
        emit(
            &ablation::line_size_sweep(sample_writes as usize / 2, 5),
            &csv_dir,
        );
        emit(
            &ablation::asymmetry_sensitivity(sample_writes as usize / 2, 8),
            &csv_dir,
        );
        emit(
            &ablation::utilization_study(sample_writes as usize, 6),
            &csv_dir,
        );
    }
}
