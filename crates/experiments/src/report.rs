//! Plain-text table rendering, normalization helpers, and the JSON
//! dump/load path for `results_full.json`.

use pcm_memsim::SimResult;
use pcm_telemetry::{percentile, TraceSummary};
use pcm_types::{Json, JsonCodec, JsonError};
use std::fmt;

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// A table titled `title` with the given column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Append a footnote.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (row, col).
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render as CSV (header row + data rows; notes become `#` comments).
    pub fn to_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// A filesystem-friendly slug of the title ("Fig. 11 — read latency"
    /// → "fig_11_read_latency").
    pub fn slug(&self) -> String {
        let mut out = String::new();
        for c in self.title.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c.to_ascii_lowercase());
            } else if (c == ' ' || c == '.' || c == '-' || c == '_')
                && !out.ends_with('_')
                && !out.is_empty()
            {
                out.push('_');
            }
        }
        out.trim_end_matches('_').to_string()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "{:<w$}", c, w = widths[i])?;
                } else {
                    write!(f, "  {:>w$}", c, w = widths[i])?;
                }
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  * {n}")?;
        }
        Ok(())
    }
}

/// Serialize a slice of results as pretty-printed JSON (the
/// `results_full.json` format: a top-level array of per-run objects).
pub fn results_to_json(results: &[SimResult]) -> String {
    Json::Arr(results.iter().map(SimResult::to_json).collect()).to_string_pretty()
}

/// Parse a `results_full.json` document back into results.
pub fn results_from_json(text: &str) -> Result<Vec<SimResult>, JsonError> {
    let doc = Json::parse(text)?;
    match doc {
        Json::Arr(items) => items.iter().map(SimResult::from_json).collect(),
        _ => Err(JsonError {
            offset: 0,
            msg: "expected a top-level array of results".into(),
        }),
    }
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a normalized value as a percentage reduction vs baseline
/// (`0.35` → `"65%"`).
pub fn reduction_pct(normalized: f64) -> String {
    format!("{:.0}%", (1.0 - normalized) * 100.0)
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Per-bank busy time and utilization from a summarized telemetry trace
/// (the first table of the `report` subcommand).
pub fn trace_bank_table(s: &TraceSummary) -> Table {
    let title = if s.workload.is_empty() {
        "Trace — per-bank utilization".to_string()
    } else {
        format!(
            "Trace — per-bank utilization ({}, {})",
            s.workload, s.scheme
        )
    };
    bank_table_titled(title, s)
}

/// [`trace_bank_table`] labelled for one rank of a sharded trace.
pub fn trace_bank_table_for_rank(s: &TraceSummary, rank: u32) -> Table {
    bank_table_titled(format!("Trace — per-bank utilization — rank {rank}"), s)
}

fn bank_table_titled(title: String, s: &TraceSummary) -> Table {
    let mut t = Table::new(
        title,
        &["bank", "busy (µs)", "reads", "writes", "lines", "util %"],
    );
    for (i, b) in s.banks.iter().enumerate() {
        t.row(vec![
            i.to_string(),
            format!("{:.1}", b.busy.as_ns_f64() / 1000.0),
            b.reads.to_string(),
            b.writes.to_string(),
            b.lines.to_string(),
            format!("{:.1}", s.utilization(i) * 100.0),
        ]);
    }
    t.note(format!(
        "span {:.1} µs, mean utilization {:.1} %",
        s.span.as_ns_f64() / 1000.0,
        s.mean_utilization() * 100.0
    ));
    t
}

/// Read-/write-queue depth percentiles from a summarized telemetry trace
/// (the second table of the `report` subcommand). Percentiles are exact
/// nearest-rank over every recorded sample.
pub fn trace_queue_table(s: &TraceSummary) -> Table {
    queue_table_titled("Trace — queue-depth percentiles".to_string(), s)
}

/// [`trace_queue_table`] labelled for one rank of a sharded trace.
pub fn trace_queue_table_for_rank(s: &TraceSummary, rank: u32) -> Table {
    queue_table_titled(format!("Trace — queue-depth percentiles — rank {rank}"), s)
}

/// One-row-per-rank rollup of a sharded trace: how evenly the shards
/// shared the load (the headline table of a multi-rank `report`).
pub fn rank_util_table(ranks: &[TraceSummary]) -> Table {
    let mut t = Table::new(
        "Trace — per-rank utilization",
        &[
            "rank",
            "banks",
            "reads",
            "writes",
            "drains",
            "batches",
            "span (µs)",
            "util %",
        ],
    );
    for (i, s) in ranks.iter().enumerate() {
        t.row(vec![
            i.to_string(),
            s.banks.len().to_string(),
            s.banks.iter().map(|b| b.reads).sum::<u64>().to_string(),
            s.banks.iter().map(|b| b.writes).sum::<u64>().to_string(),
            s.drains.to_string(),
            s.batches.to_string(),
            format!("{:.1}", s.span.as_ns_f64() / 1000.0),
            format!("{:.1}", s.mean_utilization() * 100.0),
        ]);
    }
    t.note("one shard = one rank: its own controller, bank set and scheduler");
    t
}

fn queue_table_titled(title: String, s: &TraceSummary) -> Table {
    let mut t = Table::new(title, &["queue", "samples", "p50", "p95", "p99", "max"]);
    for (name, d) in [("read", &s.read_depths), ("write", &s.write_depths)] {
        t.row(vec![
            name.to_string(),
            d.len().to_string(),
            percentile(d, 0.50).to_string(),
            percentile(d, 0.95).to_string(),
            percentile(d, 0.99).to_string(),
            d.last().copied().unwrap_or(0).to_string(),
        ]);
    }
    t.note(format!(
        "{} drains, {} pauses / {} resumes",
        s.drains, s.pauses, s.resumes
    ));
    if s.batches > 0 {
        t.note(format!(
            "{} write batches: {} stolen write0s, mean budget utilization {:.2}",
            s.batches, s.stolen_write0s, s.mean_batch_utilization
        ));
    }
    if s.watermark_adjusts + s.steered_writes + s.read_windows > 0 {
        t.note(format!(
            "scheduler: {} watermark moves, {} steered writes, {} read windows",
            s.watermark_adjusts, s.steered_writes, s.read_windows
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["workload", "value"]);
        t.row(vec!["blackscholes".into(), "1.06".into()]);
        t.row(vec!["vips".into(), "1.46".into()]);
        t.note("lower is better");
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("blackscholes"));
        assert!(s.contains("* lower is better"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(1, 1), "1.46");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_and_slug() {
        let mut t = Table::new("Fig. 11 — read latency (normalized)", &["workload", "DCW"]);
        t.row(vec!["vips, heavy".into(), "1.000".into()]);
        t.note("lower is better");
        let csv = t.to_csv();
        assert!(csv.starts_with("# lower is better\n"));
        assert!(csv.contains("workload,DCW\n"));
        assert!(csv.contains("\"vips, heavy\",1.000"), "{csv}");
        assert_eq!(t.slug(), "fig_11_read_latency_normalized");
    }

    /// Golden fixture for the `report` subcommand: a hand-written JSONL
    /// trace (one pause/resume, one batch, three queue samples) must render
    /// into exactly these per-bank utilization and queue-percentile tables.
    #[test]
    fn trace_report_tables_match_golden_fixture() {
        let jsonl = concat!(
            r#"{"ev":"run_meta","workload":"vips","scheme":"Tetris Write","banks":2}"#,
            "\n",
            r#"{"ev":"queue_depth","at":1000,"reads":2,"writes":5}"#,
            "\n",
            r#"{"ev":"drain_start","at":2000,"writes":32}"#,
            "\n",
            r#"{"ev":"bank_busy","at":2000,"bank":0,"kind":"write","until":1002000,"lines":4}"#,
            "\n",
            r#"{"ev":"batch_pack","at":2000,"bank":0,"lines":4,"write_units":1.5,"stolen_write0s":6,"utilization":0.75}"#,
            "\n",
            r#"{"ev":"bank_busy","at":100000,"bank":1,"kind":"read","until":160000,"lines":1}"#,
            "\n",
            r#"{"ev":"write_pause","at":502000,"bank":0,"pauses":1}"#,
            "\n",
            r#"{"ev":"bank_busy","at":502000,"bank":0,"kind":"read","until":562000,"lines":1}"#,
            "\n",
            r#"{"ev":"bank_idle","at":562000,"bank":0}"#,
            "\n",
            r#"{"ev":"write_resume","at":562000,"bank":0,"until":1066000}"#,
            "\n",
            r#"{"ev":"queue_depth","at":600000,"reads":7,"writes":16}"#,
            "\n",
            r#"{"ev":"queue_depth","at":650000,"reads":3,"writes":10}"#,
            "\n",
            r#"{"ev":"drain_stop","at":700000,"writes":16}"#,
            "\n",
        );
        let events = pcm_telemetry::read_events_str(jsonl).unwrap();
        let s = TraceSummary::from_events(&events);

        let banks = trace_bank_table(&s);
        assert_eq!(
            banks.title(),
            "Trace — per-bank utilization (vips, Tetris Write)"
        );
        assert_eq!(
            banks.to_csv(),
            "# span 1.1 µs, mean utilization 52.7 %\n\
             bank,busy (µs),reads,writes,lines,util %\n\
             0,1.1,1,1,5,99.8\n\
             1,0.1,1,0,1,5.6\n"
        );

        let queues = trace_queue_table(&s);
        assert_eq!(
            queues.to_csv(),
            "# 1 drains, 1 pauses / 1 resumes\n\
             # 1 write batches: 6 stolen write0s, mean budget utilization 0.75\n\
             queue,samples,p50,p95,p99,max\n\
             read,3,3,7,7,7\n\
             write,3,10,16,16,16\n"
        );
    }

    fn golden_result() -> SimResult {
        use pcm_types::Ps;
        let mut r = SimResult {
            scheme: "Tetris Write".into(),
            workload: "x264".into(),
            runtime: Ps(1_234_567_890_123),
            instructions: vec![8_000_000; 8],
            cycles: vec![9_500_000; 8],
            read_forwards: 321,
            row_hits: 1000,
            row_misses: 1760,
            mem_writes: 1520,
            mem_reads: 22_080,
            avg_write_units: 1.29,
            energy: pcm_types::PicoJoules(55_000_000),
            cell_sets: 123_456,
            cell_resets: 654_321,
            read_stall: Ps::from_ns(42),
            write_stall: Ps::from_ns(7),
            ..Default::default()
        };
        for ns in [60, 60, 110, 3_500] {
            r.read_latency.record(Ps::from_ns(ns));
        }
        r.write_latency.record(Ps::from_ns(430));
        r
    }

    #[test]
    fn results_json_roundtrip_golden() {
        let results = vec![golden_result(), SimResult::default()];
        let text = results_to_json(&results);
        let back = results_from_json(&text).unwrap();
        assert_eq!(back.len(), 2);
        let (a, b) = (&results[0], &back[0]);
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.avg_write_units, b.avg_write_units);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.read_latency.count, b.read_latency.count);
        assert_eq!(
            a.read_latency.percentile_ns(0.95),
            b.read_latency.percentile_ns(0.95)
        );
        // Second round trip is byte-stable.
        assert_eq!(text, results_to_json(&back));
    }

    #[test]
    fn results_json_escaping_and_nan() {
        let mut r = golden_result();
        r.workload = "we\"ird\\name\nwith\tctrl\u{1}and™".into();
        r.avg_write_units = f64::NAN;
        let text = results_to_json(&[r]);
        assert!(!text.contains('\u{1}'), "control chars must be escaped");
        assert!(text.contains("\\\"ird\\\\name\\n"), "{text}");
        let back = results_from_json(&text).unwrap();
        assert_eq!(back[0].workload, "we\"ird\\name\nwith\tctrl\u{1}and™");
        // NaN serializes as null (serde_json behaviour); null reads back
        // as NaN, so the not-a-number-ness survives the round trip.
        assert!(text.contains("\"avg_write_units\": null"), "{text}");
        assert!(back[0].avg_write_units.is_nan());
    }

    #[test]
    fn results_json_rejects_non_array() {
        assert!(results_from_json("{\"oops\": 1}").is_err());
        assert!(results_from_json("[1, 2").is_err());
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(0.35), "0.350");
        assert_eq!(reduction_pct(0.35), "65%");
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
