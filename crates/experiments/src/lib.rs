//! # tetris-experiments
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (§V) on the `pcm-memsim` substrate:
//!
//! * [`schemes`] — the compared write schemes behind one enum.
//! * [`pool`] — a scoped work-stealing thread pool (stdlib-only `rayon`
//!   replacement) with deterministic, input-ordered results.
//! * [`runner`] — full-system runs (workload × scheme), parallelized with
//!   [`pool`] across the experiment matrix.
//! * [`report`] — plain-text table rendering and normalization helpers.
//! * [`figures`] — one generator per paper artifact: Fig. 1, Fig. 3,
//!   Table I–III, Fig. 10–14, each annotated with the paper's reported
//!   numbers for shape comparison.
//! * [`ablation`] — beyond-paper studies: packing policy ablations
//!   (sorting, slack stealing, paper-literal Algorithm 2), power-budget
//!   sweeps (mobile X8/X4/X2), cache-line scaling (64/128/256 B), and
//!   wear/endurance comparisons.
//! * [`sched_ablation`] — controller scheduling-policy ablation: fixed
//!   drain watermarks vs the adaptive policy layer (watermarks + bank
//!   steering + read windows), diffed from telemetry traces and gated
//!   in CI.
//! * [`cache_sweep`] — the DRAM write-cache tier study: (frame budget ×
//!   replacement policy × workload) cells tabulating read-hit rate,
//!   coalesce ratio, drain bursts and service times.
//!
//! The `tetris-experiments` binary exposes all of it on the command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod bench_compare;
pub mod cache_sweep;
pub mod figures;
pub mod paper;
pub mod pool;
pub mod report;
pub mod runner;
pub mod sched_ablation;
pub mod schemes;

pub use bench_compare::{compare, BenchDelta, CompareReport, DeltaStatus};
pub use cache_sweep::{cache_sweep_table, run_cache_sweep, CacheCell};
pub use pcm_memsim::{SimResult, SystemConfig};
pub use pcm_workloads::{WorkloadProfile, ALL_PROFILES};
pub use report::Table;
pub use runner::{
    run_matrix, run_matrix_threads, run_one, run_one_to_file, run_one_traced, run_sharded,
    RunConfig, RunConfigBuilder,
};
pub use sched_ablation::{
    delta_table, regression_check, run_sched_ablation, AblationOutcome, PolicySummary,
};
pub use schemes::SchemeKind;
