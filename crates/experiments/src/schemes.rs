//! The compared write schemes behind one constructor enum.

use pcm_schemes::SchemeSelect;

/// Every write scheme in the study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Conventional full write (Eq. 1).
    Conventional,
    /// Data-comparison write — the paper's baseline.
    Dcw,
    /// Flip-N-Write (Eq. 2).
    Fnw,
    /// 2-Stage-Write (Eq. 3).
    TwoStage,
    /// Three-Stage-Write (Eq. 4).
    ThreeStage,
    /// Tetris Write (the contribution, Eq. 5).
    Tetris,
    /// PreSET (ref. \[23\]) — cited comparator, not in the paper's figures.
    PreSet,
    /// PALP — intra-bank partition-parallel writes (follow-on literature).
    Palp,
    /// WIRE — restricted coset coding (follow-on literature).
    Wire,
}

impl SchemeKind {
    /// The five schemes of Figs. 10–14 (baseline first).
    pub const COMPARED: [SchemeKind; 5] = [
        SchemeKind::Dcw,
        SchemeKind::Fnw,
        SchemeKind::TwoStage,
        SchemeKind::ThreeStage,
        SchemeKind::Tetris,
    ];

    /// Every scheme, including Conventional, PreSET, PALP and WIRE.
    pub const ALL: [SchemeKind; 9] = [
        SchemeKind::Conventional,
        SchemeKind::Dcw,
        SchemeKind::Fnw,
        SchemeKind::TwoStage,
        SchemeKind::ThreeStage,
        SchemeKind::Tetris,
        SchemeKind::PreSet,
        SchemeKind::Palp,
        SchemeKind::Wire,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Conventional => "Conventional",
            SchemeKind::Dcw => "Baseline (DCW)",
            SchemeKind::Fnw => "Flip-N-Write",
            SchemeKind::TwoStage => "2-Stage-Write",
            SchemeKind::ThreeStage => "Three-Stage-Write",
            SchemeKind::Tetris => "Tetris Write",
            SchemeKind::PreSet => "PreSET",
            SchemeKind::Palp => "PALP",
            SchemeKind::Wire => "WIRE",
        }
    }

    /// Short column label.
    pub fn short(self) -> &'static str {
        match self {
            SchemeKind::Conventional => "Conv",
            SchemeKind::Dcw => "DCW",
            SchemeKind::Fnw => "FNW",
            SchemeKind::TwoStage => "2SW",
            SchemeKind::ThreeStage => "3SW",
            SchemeKind::Tetris => "Tetris",
            SchemeKind::PreSet => "PreSET",
            SchemeKind::Palp => "PALP",
            SchemeKind::Wire => "WIRE",
        }
    }

    /// The scheme-factory selector consumed by
    /// [`pcm_schemes::SchemeConfig::instantiate`] and
    /// `pcm_memsim::System::build`.
    pub fn select(self) -> SchemeSelect {
        match self {
            SchemeKind::Conventional => SchemeSelect::Conventional,
            SchemeKind::Dcw => SchemeSelect::Dcw,
            SchemeKind::Fnw => SchemeSelect::Fnw,
            SchemeKind::TwoStage => SchemeSelect::TwoStage,
            SchemeKind::ThreeStage => SchemeSelect::ThreeStage,
            SchemeKind::Tetris => SchemeSelect::Tetris,
            SchemeKind::PreSet => SchemeSelect::PreSet,
            SchemeKind::Palp => SchemeSelect::Palp,
            SchemeKind::Wire => SchemeSelect::Wire,
        }
    }

    /// The scheme kind selecting `select` in the factory registry.
    pub fn from_select(select: SchemeSelect) -> SchemeKind {
        match select {
            SchemeSelect::Conventional => SchemeKind::Conventional,
            SchemeSelect::Dcw => SchemeKind::Dcw,
            SchemeSelect::Fnw => SchemeKind::Fnw,
            SchemeSelect::TwoStage => SchemeKind::TwoStage,
            SchemeSelect::ThreeStage => SchemeKind::ThreeStage,
            SchemeSelect::PreSet => SchemeKind::PreSet,
            SchemeSelect::Tetris => SchemeKind::Tetris,
            SchemeSelect::Palp => SchemeKind::Palp,
            SchemeSelect::Wire => SchemeKind::Wire,
        }
    }

    /// Parse a CLI name through [`SchemeSelect`]'s `FromStr` (one parser
    /// for every scheme-naming surface — CLI, replay, serve).
    pub fn parse(s: &str) -> Option<SchemeKind> {
        s.parse::<SchemeSelect>().ok().map(SchemeKind::from_select)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiated_names_match() {
        tetris_write::register_scheme_factory();
        for k in SchemeKind::ALL {
            let mut cfg = pcm_schemes::SchemeConfig::paper_baseline();
            cfg.select = k.select();
            let s = cfg.instantiate();
            match k {
                SchemeKind::Dcw => assert_eq!(s.name(), "DCW (baseline)"),
                SchemeKind::Tetris => assert_eq!(s.name(), "Tetris Write"),
                _ => assert!(!s.name().is_empty()),
            }
        }
    }

    #[test]
    fn parse_roundtrip() {
        for k in SchemeKind::ALL {
            assert_eq!(SchemeKind::parse(k.short()), Some(k));
            assert_eq!(SchemeKind::parse(k.select().tag()), Some(k));
            assert_eq!(SchemeKind::from_select(k.select()), k);
        }
        assert_eq!(SchemeKind::parse("TETRIS"), Some(SchemeKind::Tetris));
        assert_eq!(SchemeKind::parse("bogus"), None);
    }

    #[test]
    fn compared_starts_with_baseline() {
        assert_eq!(SchemeKind::COMPARED[0], SchemeKind::Dcw);
        assert_eq!(*SchemeKind::COMPARED.last().unwrap(), SchemeKind::Tetris);
    }
}
