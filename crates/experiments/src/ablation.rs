//! Beyond-paper studies: packing-policy ablations, power-budget and
//! cache-line sweeps, asymmetry sensitivity, and wear comparisons.

use crate::report::{f2, mean, Table};
use crate::schemes::SchemeKind;
use pcm_memsim::{SimResult, WriteContent};
use pcm_schemes::analytic;
use pcm_types::rng::{Rng, SmallRng};
use pcm_types::{flip_units, LineData, LineDemand, PcmTimings, PowerParams, Ps};
use pcm_workloads::{ProfileContent, WorkloadProfile, ALL_PROFILES};
use std::collections::HashMap;
use tetris_write::{analyze, analyze_batch, paper_literal::paper_literal_analyze, TetrisConfig};

/// Sample steady-state per-line demands for a profile (the same model the
/// Fig. 3 harness uses, but returning the `LineDemand`s themselves).
pub fn sample_demands(profile: &WorkloadProfile, n: usize, seed: u64) -> Vec<LineDemand> {
    let ws_lines = (n / 4).max(16);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut content = ProfileContent::new(profile, seed ^ 0xABCD);
    let mut mem: HashMap<usize, (LineData, u32)> = HashMap::new();
    let mut out = Vec::with_capacity(n);
    // Generate more writes than demands so first touches warm the set.
    while out.len() < n {
        let idx = rng.gen_range(0..ws_lines);
        let first = !mem.contains_key(&idx);
        let (stored, flips) = mem.entry(idx).or_insert_with(|| (LineData::zeroed(64), 0));
        let mut logical = *stored;
        for i in 0..8 {
            if *flips & (1 << i) != 0 {
                logical.set_unit(i, !logical.unit(i));
            }
        }
        let new_logical = content.generate(0, &logical);
        let fl = flip_units(stored, *flips, &new_logical);
        if !first {
            out.push(LineDemand::from_flipped(&fl));
        }
        *stored = fl.stored;
        *flips = fl.flips;
    }
    out
}

fn avg_units(
    demands: &[LineDemand],
    cfg: &TetrisConfig,
    f: impl Fn(&LineDemand, &TetrisConfig) -> f64,
) -> f64 {
    mean(&demands.iter().map(|d| f(d, cfg)).collect::<Vec<_>>())
}

/// Packing-policy ablation: full Tetris vs no-sorting (plain first-fit),
/// no slack stealing, and the paper-literal Algorithm 2.
pub fn packing_ablation(samples: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation — write units under packing-policy variants",
        &[
            "workload",
            "Tetris (FFD+steal)",
            "no sort",
            "no steal",
            "paper-literal",
        ],
    );
    let base = TetrisConfig::paper_baseline();
    let mut no_sort = base;
    no_sort.sort_decreasing = false;
    let mut no_steal = base;
    no_steal.steal_write0_slack = false;

    let full_f = |d: &LineDemand, c: &TetrisConfig| analyze(d, c).unwrap().write_units_equiv();
    let lit_f = |d: &LineDemand, c: &TetrisConfig| {
        paper_literal_analyze(d, c).unwrap().write_units_equiv(8)
    };

    let mut cols: [Vec<f64>; 4] = Default::default();
    for p in &ALL_PROFILES {
        let demands = sample_demands(p, samples, seed);
        let vals = [
            avg_units(&demands, &base, full_f),
            avg_units(&demands, &no_sort, full_f),
            avg_units(&demands, &no_steal, full_f),
            avg_units(&demands, &base, lit_f),
        ];
        for (c, v) in cols.iter_mut().zip(vals) {
            c.push(v);
        }
        let mut row = vec![p.name.to_string()];
        row.extend(vals.iter().map(|&v| f2(v)));
        t.row(row);
    }
    let mut row = vec!["average".to_string()];
    row.extend(cols.iter().map(|c| f2(mean(c))));
    t.row(row);
    t.note("each mechanism removed in isolation; lower is better");
    t
}

/// Power-budget sweep: Tetris write units as the per-chip budget shrinks
/// toward mobile configurations (paper §I: X8/X4/X2 division modes).
pub fn budget_sweep(samples: usize, seed: u64) -> Table {
    let budgets = [32u32, 16, 8, 4];
    let mut headers = vec!["workload".to_string()];
    headers.extend(budgets.iter().map(|b| format!("chip budget {b}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Sweep — Tetris write units vs power budget", &headers_ref);
    for p in &ALL_PROFILES {
        let demands = sample_demands(p, samples, seed);
        let mut row = vec![p.name.to_string()];
        for &b in &budgets {
            let mut cfg = TetrisConfig::paper_baseline();
            cfg.scheme.power = PowerParams {
                l_ratio: 2,
                budget_per_bank: b * 4,
                chips_per_bank: 4,
            };
            row.push(f2(avg_units(&demands, &cfg, |d, c| {
                analyze(d, c).unwrap().write_units_equiv()
            })));
        }
        t.row(row);
    }
    t.note("bank budget = 4 x chip budget (GCP); baseline chip budget is 32");
    t
}

/// Cache-line-size sweep (64 B baseline, 128 B POWER7, 256 B zEnterprise):
/// Tetris measured vs the static schemes' analytic write units.
pub fn line_size_sweep(samples: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Sweep — write units vs cache-line size",
        &[
            "line size",
            "Conv",
            "FNW",
            "2SW",
            "3SW",
            "Tetris (vips)",
            "Tetris (blackscholes)",
        ],
    );
    for line_bytes in [64u32, 128, 256] {
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.org.cache_line_bytes = line_bytes;
        let theory = analytic::theoretical_write_units(&cfg.scheme);
        let tetris_units = |profile_name: &str| {
            let p = WorkloadProfile::by_name(profile_name).unwrap();
            // Wider lines: replicate the 8-unit demand model across units.
            let demands: Vec<LineDemand> = sample_demands(p, samples, seed)
                .into_iter()
                .map(|d| {
                    let units_needed = (line_bytes / 8) as usize;
                    let mut units = Vec::with_capacity(units_needed);
                    while units.len() < units_needed {
                        units.extend_from_slice(d.units());
                    }
                    units.truncate(units_needed);
                    LineDemand::from_units(&units)
                })
                .collect();
            avg_units(&demands, &cfg, |d, c| {
                analyze(d, c).unwrap().write_units_equiv()
            })
        };
        t.row(vec![
            format!("{line_bytes} B"),
            f2(theory[0].1),
            f2(theory[1].1),
            f2(theory[2].1),
            f2(theory[3].1),
            f2(tetris_units("vips")),
            f2(tetris_units("blackscholes")),
        ]);
    }
    t.note("the static schemes scale linearly with line size; Tetris absorbs it into slack");
    t
}

/// Asymmetry sensitivity: Tetris vs 3SW service time as K = Tset/Treset and
/// L vary.
pub fn asymmetry_sensitivity(samples: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Sweep — avg write service time (ns) vs asymmetries (dedup demand)",
        &["K (Tset/Treset)", "L", "3SW (Eq. 4)", "Tetris"],
    );
    let p = WorkloadProfile::by_name("dedup").unwrap();
    let demands = sample_demands(p, samples, seed);
    for (k, l) in [(8u64, 2u32), (8, 4), (4, 2), (16, 2)] {
        let mut cfg = TetrisConfig::paper_baseline();
        cfg.scheme.timings = PcmTimings {
            t_read: Ps::from_ns(50),
            t_reset: Ps::from_ns(430 / k),
            t_set: Ps::from_ns(430),
        };
        cfg.scheme.power.l_ratio = l;
        let three = analytic::t_three_stage(&cfg.scheme);
        let tetris = mean(
            &demands
                .iter()
                .map(|d| {
                    let a = analyze(d, &cfg).unwrap();
                    (cfg.scheme.timings.t_read
                        + cfg.analysis_overhead
                        + a.write_time(cfg.scheme.timings.t_set))
                    .as_ns_f64()
                })
                .collect::<Vec<_>>(),
        );
        t.row(vec![
            k.to_string(),
            l.to_string(),
            f2(three.as_ns_f64()),
            f2(tetris),
        ]);
    }
    t
}

/// Wear/endurance comparison from a run matrix: total cell pulses per
/// scheme (lower wears the array less).
pub fn wear_comparison(
    results: &[SimResult],
    profiles: &[WorkloadProfile],
    schemes: &[SchemeKind],
) -> Table {
    let mut headers = vec!["workload".to_string()];
    headers.extend(schemes.iter().map(|s| s.short().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Endurance — cell pulses per line write", &headers_ref);
    for (p, prof) in profiles.iter().enumerate() {
        let mut row = vec![prof.name.to_string()];
        for s in 0..schemes.len() {
            let r = &results[p * schemes.len() + s];
            let per_write = (r.cell_sets + r.cell_resets) as f64 / r.mem_writes.max(1) as f64;
            row.push(f2(per_write));
        }
        t.row(row);
    }
    t.note("differential schemes pulse only changed cells; 2SW/Conv pulse everything");
    t
}

/// Extension — inter-line batching (the authors' DATE'16 follow-up,
/// ref. \[10\]): schedule 1/2/4 queued lines together; write units amortize
/// across the batch as one line's SET slack hides another's RESETs.
pub fn batching_study(samples: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Extension — write units per line when batching queued writes",
        &["workload", "batch=1", "batch=2", "batch=4"],
    );
    let cfg = TetrisConfig::paper_baseline();
    for p in &ALL_PROFILES {
        let demands = sample_demands(p, samples, seed);
        let mut row = vec![p.name.to_string()];
        for batch in [1usize, 2, 4] {
            let mut per_line = Vec::new();
            for group in demands.chunks_exact(batch) {
                let b = analyze_batch(group, &cfg).expect("batch fits");
                per_line.push(b.write_units_per_line());
            }
            row.push(f2(mean(&per_line)));
        }
        t.row(row);
    }
    t.note("all lines in a batch share write units and complete together");
    t
}

/// Extension — bank/rank parallelism sweep: how much of Tetris's win
/// could be bought with more banks instead (the paper's architecture uses
/// 8 banks × 1 rank)?
pub fn bank_parallelism_sweep(base: &crate::runner::RunConfig) -> Table {
    let mut t = Table::new(
        "Sweep — runtime (µs) vs bank/rank parallelism (vips)",
        &["banks x ranks", "DCW", "Tetris", "Tetris/DCW"],
    );
    let p = WorkloadProfile::by_name("vips").expect("known workload");
    for (banks, ranks) in [(4u32, 1u32), (8, 1), (16, 1), (8, 2)] {
        let mut cfg = *base;
        cfg.system.mem.org.banks_per_rank = banks;
        cfg.system.mem.org.ranks = ranks;
        let dcw = crate::runner::run_one(p, SchemeKind::Dcw, &cfg);
        let tetris = crate::runner::run_one(p, SchemeKind::Tetris, &cfg);
        let d = dcw.runtime.as_ns_f64() / 1000.0;
        let w = tetris.runtime.as_ns_f64() / 1000.0;
        t.row(vec![
            format!("{banks} x {ranks}"),
            format!("{d:.1}"),
            format!("{w:.1}"),
            format!("{:.2}", w / d),
        ]);
    }
    t.note("more banks help the baseline too; Tetris's edge persists at every width");
    t
}

/// Extension — system-level batching: runtime and write latency when the
/// controller drains 1/2/4 writes per bank as one Tetris batch.
pub fn system_batching_study(base: &crate::runner::RunConfig) -> Table {
    let mut t = Table::new(
        "Extension — batched drains (Tetris): normalized runtime",
        &["workload", "batch=1", "batch=2", "batch=4"],
    );
    for name in ["dedup", "ferret", "vips"] {
        let p = WorkloadProfile::by_name(name).expect("known workload");
        let mut row = vec![name.to_string()];
        let mut baseline = None;
        for batch in [1usize, 2, 4] {
            let mut cfg = *base;
            cfg.system.controller.batch_writes = batch;
            let r = crate::runner::run_one(p, SchemeKind::Tetris, &cfg);
            let runtime = r.runtime.as_ns_f64();
            let norm = match baseline {
                None => {
                    baseline = Some(runtime);
                    1.0
                }
                Some(b) => runtime / b,
            };
            row.push(format!("{norm:.3}"));
        }
        t.row(row);
    }
    t.note("batching amortizes read+analysis overhead and shares write units");
    t
}

/// Extension — subarray parallelism (ref. \[15\]): read latency as reads
/// gain subarrays to dodge in-flight writes.
pub fn subarray_sweep(base: &crate::runner::RunConfig) -> Table {
    let mut t = Table::new(
        "Extension — subarrays per bank: mean read latency (ns)",
        &["workload", "DCW s=1", "DCW s=4", "Tetris s=1", "Tetris s=4"],
    );
    for name in ["canneal", "vips"] {
        let p = WorkloadProfile::by_name(name).expect("known workload");
        let mut row = vec![name.to_string()];
        for kind in [SchemeKind::Dcw, SchemeKind::Tetris] {
            for subarrays in [1usize, 4] {
                let mut cfg = *base;
                cfg.system.controller.subarrays_per_bank = subarrays;
                let r = crate::runner::run_one(p, kind, &cfg);
                row.push(f2(r.read_latency.mean_ns()));
            }
        }
        t.row(row);
    }
    t.note("subarrays let reads dodge writes — another mitigation Tetris needs less");
    t
}

/// Extension — write pausing (the paper's ref. \[24\]): read latency with
/// and without allowing reads to preempt in-flight writes. Pausing rescues
/// the baseline's reads from long writes; Tetris's short writes leave much
/// less to rescue.
pub fn write_pausing_study(base: &crate::runner::RunConfig) -> Table {
    let mut t = Table::new(
        "Extension — write pausing: mean read latency (ns)",
        &["workload", "DCW", "DCW+pause", "Tetris", "Tetris+pause"],
    );
    let mut paused_cfg = *base;
    paused_cfg.system.controller.write_pausing = true;
    for name in ["canneal", "ferret", "vips"] {
        let p = WorkloadProfile::by_name(name).expect("known workload");
        let row = [
            crate::runner::run_one(p, SchemeKind::Dcw, base),
            crate::runner::run_one(p, SchemeKind::Dcw, &paused_cfg),
            crate::runner::run_one(p, SchemeKind::Tetris, base),
            crate::runner::run_one(p, SchemeKind::Tetris, &paused_cfg),
        ];
        let mut cells = vec![name.to_string()];
        cells.extend(row.iter().map(|r| f2(r.read_latency.mean_ns())));
        t.row(cells);
    }
    t.note("pausing shortens reads stuck behind writes; Tetris needs it far less");
    t
}

/// Observation-2 utilization: mean power-budget utilization of the
/// schedule under Tetris vs the worst-case provisioning of the baselines.
pub fn utilization_study(samples: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Observation — power-budget utilization",
        &["workload", "Tetris schedule", "FNW worst-case provisioning"],
    );
    let cfg = TetrisConfig::paper_baseline();
    for p in &ALL_PROFILES {
        let demands = sample_demands(p, samples, seed);
        let tetris_util = mean(
            &demands
                .iter()
                .map(|d| analyze(d, &cfg).unwrap().utilization())
                .collect::<Vec<_>>(),
        );
        // FNW provisions 2 units/slot over 4 slots: utilization is actual
        // charge over budget x slots.
        let fnw_util = mean(
            &demands
                .iter()
                .map(|d| {
                    let charge: u32 = d.units().iter().map(|u| u.sets + 2 * u.resets).sum();
                    charge as f64 / (128.0 * 4.0)
                })
                .collect::<Vec<_>>(),
        );
        t.row(vec![
            p.name.to_string(),
            format!("{:.0}%", tetris_util * 100.0),
            format!("{:.0}%", fnw_util * 100.0),
        ]);
    }
    t.note("paper Observation 1: FNW leaves utilization near (9.6x2)/64 = 30%");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demands_match_profile_statistics() {
        let p = WorkloadProfile::by_name("ferret").unwrap();
        let demands = sample_demands(p, 400, 5);
        assert_eq!(demands.len(), 400);
        let avg_total = mean(
            &demands
                .iter()
                .map(|d| d.total_changed() as f64 / d.len() as f64)
                .collect::<Vec<_>>(),
        );
        assert!((avg_total - p.total_mean()).abs() < p.total_mean() * 0.3);
    }

    #[test]
    fn packing_ablation_ordering() {
        let t = packing_ablation(150, 3);
        assert_eq!(t.num_rows(), 9);
        // Average row: full Tetris ≤ each ablated variant.
        let avg = t.num_rows() - 1;
        let full: f64 = t.cell(avg, 1).parse().unwrap();
        for col in 2..=4 {
            let v: f64 = t.cell(avg, col).parse().unwrap();
            assert!(full <= v + 1e-9, "full {full} vs col {col} = {v}");
        }
    }

    #[test]
    fn budget_sweep_monotone() {
        let t = budget_sweep(120, 4);
        for row in 0..t.num_rows() {
            let wide: f64 = t.cell(row, 1).parse().unwrap();
            let narrow: f64 = t.cell(row, 4).parse().unwrap();
            assert!(narrow >= wide, "smaller budget cannot pack tighter");
        }
    }

    #[test]
    fn line_size_sweep_static_schemes_scale() {
        let t = line_size_sweep(100, 5);
        let conv64: f64 = t.cell(0, 1).parse().unwrap();
        let conv256: f64 = t.cell(2, 1).parse().unwrap();
        assert_eq!(conv64, 8.0);
        assert_eq!(conv256, 32.0);
        let tetris64: f64 = t.cell(0, 6).parse().unwrap();
        let tetris256: f64 = t.cell(2, 6).parse().unwrap();
        assert!(
            tetris256 < tetris64 * 4.0 * 0.8,
            "Tetris absorbs line growth: {tetris64} -> {tetris256}"
        );
    }

    #[test]
    fn utilization_tetris_beats_fnw_provisioning() {
        let t = utilization_study(100, 6);
        assert_eq!(t.num_rows(), 8);
    }

    #[test]
    fn batching_reduces_units_per_line() {
        let t = batching_study(160, 21);
        assert_eq!(t.num_rows(), 8);
        for row in 0..t.num_rows() {
            let b1: f64 = t.cell(row, 1).parse().unwrap();
            let b2: f64 = t.cell(row, 2).parse().unwrap();
            let b4: f64 = t.cell(row, 3).parse().unwrap();
            assert!(b2 <= b1 + 1e-9, "batch=2 never worse: {b1} -> {b2}");
            assert!(b4 <= b2 + 1e-9, "batch=4 never worse: {b2} -> {b4}");
        }
        // Sparse workloads amortize dramatically (≈ 1/batch).
        let light: f64 = t.cell(0, 3).parse().unwrap(); // blackscholes, batch=4
        assert!(light < 0.5, "blackscholes batch=4 per-line units: {light}");
    }

    #[test]
    fn more_banks_reduce_runtime_for_both() {
        let cfg = crate::runner::RunConfig::builder()
            .instructions_per_core(200_000)
            .build()
            .unwrap();
        let t = bank_parallelism_sweep(&cfg);
        assert_eq!(t.num_rows(), 4);
        let dcw4: f64 = t.cell(0, 1).parse().unwrap();
        let dcw16: f64 = t.cell(2, 1).parse().unwrap();
        assert!(dcw16 < dcw4, "16 banks beat 4 for the baseline");
        // Tetris stays ahead at every geometry.
        for row in 0..4 {
            let ratio: f64 = t.cell(row, 3).parse().unwrap();
            assert!(ratio < 1.0, "row {row}: Tetris/DCW = {ratio}");
        }
    }

    #[test]
    fn system_batching_monotone() {
        let cfg = crate::runner::RunConfig::builder()
            .instructions_per_core(250_000)
            .build()
            .unwrap();
        let t = system_batching_study(&cfg);
        for row in 0..t.num_rows() {
            let b4: f64 = t.cell(row, 3).parse().unwrap();
            assert!(b4 <= 1.02, "batch=4 should not be slower: {b4}");
        }
    }

    #[test]
    fn subarrays_help_baseline_reads() {
        let cfg = crate::runner::RunConfig::builder()
            .instructions_per_core(250_000)
            .build()
            .unwrap();
        let t = subarray_sweep(&cfg);
        for row in 0..t.num_rows() {
            let dcw1: f64 = t.cell(row, 1).parse().unwrap();
            let dcw4: f64 = t.cell(row, 2).parse().unwrap();
            assert!(dcw4 < dcw1, "row {row}: {dcw1} -> {dcw4}");
        }
    }

    #[test]
    fn pausing_helps_baseline_reads_more_than_tetris() {
        let cfg = crate::runner::RunConfig::builder()
            .instructions_per_core(300_000)
            .build()
            .unwrap();
        let t = write_pausing_study(&cfg);
        assert_eq!(t.num_rows(), 3);
        for row in 0..t.num_rows() {
            let dcw: f64 = t.cell(row, 1).parse().unwrap();
            let dcw_p: f64 = t.cell(row, 2).parse().unwrap();
            let tetris: f64 = t.cell(row, 3).parse().unwrap();
            let tetris_p: f64 = t.cell(row, 4).parse().unwrap();
            assert!(dcw_p < dcw, "pausing must cut baseline read latency");
            // Absolute rescue for the baseline dwarfs Tetris's.
            assert!(
                dcw - dcw_p > (tetris - tetris_p).abs(),
                "row {row}: {dcw}->{dcw_p} vs {tetris}->{tetris_p}"
            );
        }
    }

    #[test]
    fn asymmetry_table_renders() {
        let t = asymmetry_sensitivity(60, 8);
        assert_eq!(t.num_rows(), 4);
    }
}
