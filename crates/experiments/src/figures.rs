//! One generator per paper artifact (Fig. 1, Fig. 3, Tables I–III,
//! Figs. 10–14), each annotated with the paper's reported numbers.

use crate::paper;
use crate::report::{f2, f3, mean, reduction_pct, Table};
use crate::schemes::SchemeKind;
use pcm_device::PulseLibrary;
use pcm_memsim::{SimResult, SystemConfig};
use pcm_schemes::{analytic, SchemeConfig};
use pcm_workloads::{measure_bit_stats, WorkloadProfile, ALL_PROFILES};

/// A workload × scheme result matrix (workload-major, as produced by
/// [`crate::runner::run_matrix`]).
pub struct MatrixView<'a> {
    /// Results, `profiles.len() × schemes.len()` entries.
    pub results: &'a [SimResult],
    /// Row labels.
    pub profiles: &'a [WorkloadProfile],
    /// Column labels.
    pub schemes: &'a [SchemeKind],
}

impl<'a> MatrixView<'a> {
    /// Construct and validate shape.
    pub fn new(
        results: &'a [SimResult],
        profiles: &'a [WorkloadProfile],
        schemes: &'a [SchemeKind],
    ) -> Self {
        assert_eq!(
            results.len(),
            profiles.len() * schemes.len(),
            "matrix shape"
        );
        MatrixView {
            results,
            profiles,
            schemes,
        }
    }

    /// Result for (profile row, scheme column).
    pub fn get(&self, p: usize, s: usize) -> &SimResult {
        &self.results[p * self.schemes.len() + s]
    }

    fn baseline_col(&self) -> usize {
        self.schemes
            .iter()
            .position(|&s| s == SchemeKind::Dcw)
            .expect("matrix must include the DCW baseline")
    }

    /// Generic normalized-metric figure: `metric(result)` per scheme,
    /// divided by the DCW baseline of the same workload.
    fn normalized_figure(
        &self,
        title: &str,
        metric: impl Fn(&SimResult) -> f64,
        lower_is_better: bool,
    ) -> Table {
        let mut headers = vec!["workload".to_string()];
        headers.extend(self.schemes.iter().map(|s| s.short().to_string()));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(title, &headers_ref);
        let base_col = self.baseline_col();
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); self.schemes.len()];
        for (p, prof) in self.profiles.iter().enumerate() {
            let base = metric(self.get(p, base_col)).max(f64::MIN_POSITIVE);
            let mut cells = vec![prof.name.to_string()];
            for (s, col) in per_scheme.iter_mut().enumerate() {
                let norm = metric(self.get(p, s)) / base;
                col.push(norm);
                cells.push(f3(norm));
            }
            t.row(cells);
        }
        let mut avg_cells = vec!["average".to_string()];
        for vals in &per_scheme {
            avg_cells.push(f3(mean(vals)));
        }
        t.row(avg_cells);
        t.note(if lower_is_better {
            "normalized to the DCW baseline; lower is better"
        } else {
            "normalized to the DCW baseline; higher is better"
        });
        t
    }
}

/// Fig. 1 — the SET/RESET/READ pulse asymmetries.
pub fn fig1(cfg: &SchemeConfig) -> Table {
    let mut t = Table::new(
        "Fig. 1 — PCM pulse asymmetries",
        &[
            "pulse",
            "duration",
            "current (SET-equiv)",
            "charge (duration x current)",
        ],
    );
    let lib = PulseLibrary::from_params(&cfg.timings, &cfg.power);
    for (name, p) in [("READ", lib.read), ("RESET", lib.reset), ("SET", lib.set)] {
        t.row(vec![
            name.to_string(),
            p.duration.to_string(),
            p.amplitude.to_string(),
            p.charge().to_string(),
        ]);
    }
    t.note(format!(
        "time asymmetry K = {}, power asymmetry L = {}",
        cfg.timings.k_ratio(),
        cfg.power.l_ratio
    ));
    t
}

/// Fig. 3 — RESET/SET bit-writes per 64-bit data unit, per workload.
pub fn fig3(writes_per_workload: u64, seed: u64) -> Table {
    let mut t = Table::new(
        "Fig. 3 — bit-writes per 64-bit data unit (after flip coding)",
        &[
            "workload",
            "RESET",
            "SET",
            "total",
            "paper RESET",
            "paper SET",
        ],
    );
    let mut totals = Vec::new();
    let mut set_avgs = Vec::new();
    let mut reset_avgs = Vec::new();
    for p in &ALL_PROFILES {
        let s = measure_bit_stats(p, writes_per_workload, seed);
        totals.push(s.avg_total());
        set_avgs.push(s.avg_sets);
        reset_avgs.push(s.avg_resets);
        t.row(vec![
            p.name.to_string(),
            f2(s.avg_resets),
            f2(s.avg_sets),
            f2(s.avg_total()),
            f2(p.reset_mean),
            f2(p.set_mean),
        ]);
    }
    t.row(vec![
        "average".into(),
        f2(mean(&reset_avgs)),
        f2(mean(&set_avgs)),
        f2(mean(&totals)),
        f2(paper::OBS1_AVG_RESETS),
        f2(paper::OBS1_AVG_SETS),
    ]);
    t.note(format!(
        "paper Observation 1: {} bit-writes per unit on average ({} SET + {} RESET)",
        paper::OBS1_AVG_TOTAL,
        paper::OBS1_AVG_SETS,
        paper::OBS1_AVG_RESETS
    ));
    t
}

/// Table I — scheme comparison, with *measured* latency/energy reductions.
///
/// Latency is compared against the DCW baseline (as in Figs. 11–14).
/// Energy follows the paper's Table I semantics: against a *conventional
/// full write*, which pulses every cell of the line (data + flip tags) —
/// that is what 2-Stage-Write degenerates to, hence its "NO".
pub fn table1(m: &MatrixView<'_>) -> Table {
    let mut t = Table::new(
        "Table I — write schemes compared (measured averages)",
        &[
            "scheme",
            "key idea",
            "write latency vs baseline",
            "cell pulses vs full write",
        ],
    );
    let base_col = m.baseline_col();
    for (s, kind) in m.schemes.iter().enumerate() {
        if *kind == SchemeKind::Dcw {
            continue;
        }
        let mut lat = Vec::new();
        let mut en = Vec::new();
        for p in 0..m.profiles.len() {
            let base = m.get(p, base_col);
            let r = m.get(p, s);
            lat.push(r.write_latency.mean_ns() / base.write_latency.mean_ns().max(1e-12));
            // A conventional full write pulses every data cell plus the
            // per-unit flip tags: 512 + 8 per 64 B line.
            let full_pulses_per_write = 520.0;
            let pulses_per_write =
                (r.cell_sets + r.cell_resets) as f64 / r.mem_writes.max(1) as f64;
            en.push(pulses_per_write / full_pulses_per_write);
        }
        let idea = match kind {
            SchemeKind::Conventional => "worst-case full write",
            SchemeKind::Fnw => "flip-bit data reduction",
            SchemeKind::TwoStage => "power/time asymmetry stages",
            SchemeKind::ThreeStage => "2SW + read-before-write flip",
            SchemeKind::Tetris => "schedule by actual current demand",
            SchemeKind::PreSet => "background SET sweep, RESET-only write-back",
            SchemeKind::Palp => "intra-bank partition-parallel writes",
            SchemeKind::Wire => "restricted coset coding (4-row codebook)",
            SchemeKind::Dcw => unreachable!(),
        };
        t.row(vec![
            kind.name().to_string(),
            idea.to_string(),
            format!("reduced {}", reduction_pct(mean(&lat))),
            if mean(&en) < 0.999 {
                format!("reduced {}", reduction_pct(mean(&en)))
            } else {
                "NOT reduced".to_string()
            },
        ]);
    }
    t.note("paper Table I: FNW/3SW/Tetris reduce latency AND energy; 2SW latency only");
    t.note("DCW (the baseline) is itself differential; 2SW's ~100% pulse ratio = no energy win");
    t
}

/// Table II — simulation parameters actually in force.
pub fn table2(cfg: &SystemConfig) -> Table {
    let mut t = Table::new("Table II — simulation parameters", &["parameter", "value"]);
    let mem = &cfg.mem;
    let rows: Vec<(String, String)> = vec![
        (
            "CPU".into(),
            format!("{}-core CMP, {} GHz", cfg.cores, cfg.cpu_freq_mhz / 1000),
        ),
        (
            "Cache line".into(),
            format!("{} B", mem.org.cache_line_bytes),
        ),
        (
            "L1".into(),
            format!(
                "{} KB, {} cycles",
                cfg.l1.size_bytes >> 10,
                cfg.l1.latency_cycles
            ),
        ),
        (
            "L2".into(),
            format!(
                "{} MB, {} cycles",
                cfg.l2.size_bytes >> 20,
                cfg.l2.latency_cycles
            ),
        ),
        (
            "L3".into(),
            format!(
                "{} MB, {} cycles",
                cfg.l3.size_bytes >> 20,
                cfg.l3.latency_cycles
            ),
        ),
        (
            "Memory controller".into(),
            format!("FRFCFS, {}-entry R/W queues", cfg.controller.read_queue_cap),
        ),
        (
            "Memory organization".into(),
            format!(
                "{} GB SLC PCM, single-rank, {} banks",
                mem.org.capacity_bytes >> 30,
                mem.org.banks_per_rank
            ),
        ),
        (
            "PCM organization".into(),
            format!(
                "{}-X{} chips, {} B write unit",
                mem.org.chips_per_bank,
                mem.org.write_unit_bits_per_chip,
                mem.org.write_unit_bytes()
            ),
        ),
        (
            "Memory timing".into(),
            format!(
                "READ {} / RESET {} / SET {}",
                mem.timings.t_read, mem.timings.t_reset, mem.timings.t_set
            ),
        ),
        (
            "Memory energy".into(),
            format!("RESET/SET current ratio = {}", mem.power.l_ratio),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k, v]);
    }
    t
}

/// Table III — workload characteristics: published + measured RPKI/WPKI.
pub fn table3(m: Option<&MatrixView<'_>>) -> Table {
    let mut t = Table::new(
        "Table III — workloads",
        &[
            "program",
            "domain",
            "sharing",
            "RPKI",
            "WPKI",
            "measured RPKI",
            "measured WPKI",
        ],
    );
    let profiles: &[WorkloadProfile] = match m {
        Some(m) => m.profiles,
        None => &ALL_PROFILES,
    };
    for (i, p) in profiles.iter().enumerate() {
        let (mr, mw) = match m {
            Some(m) => {
                let r = m.get(i, m.baseline_col());
                (f2(r.rpki()), f2(r.wpki()))
            }
            None => ("-".into(), "-".into()),
        };
        t.row(vec![
            p.name.to_string(),
            p.domain.to_string(),
            format!("{:?}", p.sharing),
            f2(p.rpki),
            f2(p.wpki),
            mr,
            mw,
        ]);
    }
    t
}

/// Fig. 10 — average write units per cache-line write.
pub fn fig10(m: &MatrixView<'_>, scheme_cfg: &SchemeConfig) -> Table {
    let mut headers = vec!["workload".to_string()];
    headers.extend(m.schemes.iter().map(|s| s.short().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Fig. 10 — average number of write units", &headers_ref);
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); m.schemes.len()];
    for (p, prof) in m.profiles.iter().enumerate() {
        let mut cells = vec![prof.name.to_string()];
        for (s, col) in per_scheme.iter_mut().enumerate() {
            let units = m.get(p, s).avg_write_units;
            col.push(units);
            cells.push(f2(units));
        }
        t.row(cells);
    }
    let mut avg = vec!["average".to_string()];
    for v in &per_scheme {
        avg.push(f2(mean(v)));
    }
    t.row(avg);
    let theory = analytic::theoretical_write_units(scheme_cfg);
    t.note(format!(
        "theoretical (Eq. 1-4): Conv {:.2}, FNW {:.2}, 2SW {:.2}, 3SW {:.2}",
        theory[0].1, theory[1].1, theory[2].1, theory[3].1
    ));
    t.note(format!(
        "paper: Tetris needs {:.2}-{:.2} write units per cache-line write",
        paper::TETRIS_WRITE_UNITS_RANGE.0,
        paper::TETRIS_WRITE_UNITS_RANGE.1
    ));
    t
}

/// Fig. 11 — normalized read latency.
pub fn fig11(m: &MatrixView<'_>) -> Table {
    let mut t = m.normalized_figure(
        "Fig. 11 — read latency (normalized to baseline)",
        |r| r.read_latency.mean_ns(),
        true,
    );
    t.note("paper averages: FNW -39%, 2SW -50%, 3SW -56%, Tetris -65%");
    t
}

/// Fig. 12 — normalized write latency.
pub fn fig12(m: &MatrixView<'_>) -> Table {
    let mut t = m.normalized_figure(
        "Fig. 12 — write latency (normalized to baseline)",
        |r| r.write_latency.mean_ns(),
        true,
    );
    t.note(
        "paper: Tetris -40% average; blackscholes/swaptions show little gain (write-drain policy)",
    );
    t
}

/// Fig. 13 — IPC improvement.
pub fn fig13(m: &MatrixView<'_>) -> Table {
    let mut t = m.normalized_figure(
        "Fig. 13 — IPC improvement (IPC / IPC_baseline)",
        |r| r.ipc(),
        false,
    );
    t.note("paper averages: FNW 1.4x, 2SW 1.6x, 3SW 1.8x, Tetris 2.0x");
    t
}

/// Fig. 14 — normalized running time.
pub fn fig14(m: &MatrixView<'_>) -> Table {
    let mut t = m.normalized_figure(
        "Fig. 14 — running time (normalized to baseline)",
        |r| r.runtime.as_ns_f64(),
        true,
    );
    t.note("paper averages: FNW -24%, 2SW -34%, 3SW -39%, Tetris -46%");
    t
}

/// Extension — read tail latency: p50/p95/p99 per scheme on one workload.
/// The paper plots means; tails show the mechanism even more starkly —
/// reads stuck behind a multi-µs baseline write dominate p99.
pub fn tail_latency_figure(m: &MatrixView<'_>, workload: &str) -> Table {
    let mut t = Table::new(
        format!("Tail latency — read p50/p95/p99 (ns), {workload}"),
        &["scheme", "p50", "p95", "p99", "mean"],
    );
    let p = m
        .profiles
        .iter()
        .position(|x| x.name == workload)
        .expect("workload in matrix");
    for (s, kind) in m.schemes.iter().enumerate() {
        let r = m.get(p, s);
        t.row(vec![
            kind.short().to_string(),
            f2(r.read_latency.percentile_ns(0.50)),
            f2(r.read_latency.percentile_ns(0.95)),
            f2(r.read_latency.percentile_ns(0.99)),
            f2(r.read_latency.mean_ns()),
        ]);
    }
    t.note("histogram resolution ~25%; reads behind long writes dominate the tail");
    t
}

/// Extension — energy per scheme (quantifies Table I's YES/NO column).
pub fn energy_figure(m: &MatrixView<'_>) -> Table {
    let mut t = m.normalized_figure(
        "Energy — total programming+read energy (normalized to baseline)",
        |r| r.energy.as_pj() as f64,
        true,
    );
    t.note("paper Table I: 2SW does not reduce energy; FNW/3SW/Tetris do");
    t.note("the DCW baseline is already differential, so FNW/3SW/Tetris sit near 1.0 here;");
    t.note("2SW programs every bit and gives the differential energy win back (~3x)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_matrix, RunConfig};

    fn small_matrix() -> (Vec<SimResult>, Vec<WorkloadProfile>, Vec<SchemeKind>) {
        let profiles = vec![ALL_PROFILES[0], ALL_PROFILES[7]];
        let schemes = vec![SchemeKind::Dcw, SchemeKind::Tetris];
        let cfg = RunConfig::builder()
            .instructions_per_core(200_000)
            .build()
            .unwrap();
        let results = run_matrix(&profiles, &schemes, &cfg);
        (results, profiles, schemes)
    }

    #[test]
    fn fig1_renders_pulses() {
        let t = fig1(&SchemeConfig::paper_baseline());
        assert_eq!(t.num_rows(), 3);
        let s = t.to_string();
        assert!(s.contains("430ns"));
        assert!(s.contains("K = 8"));
    }

    #[test]
    fn fig3_has_all_workloads_plus_average() {
        let t = fig3(400, 3);
        assert_eq!(t.num_rows(), 9);
    }

    #[test]
    fn tables_and_figures_render() {
        let (results, profiles, schemes) = small_matrix();
        let m = MatrixView::new(&results, &profiles, &schemes);
        for t in [
            table1(&m),
            table2(&SystemConfig::paper_baseline()),
            table3(Some(&m)),
            fig10(&m, &SchemeConfig::paper_baseline()),
            fig11(&m),
            fig12(&m),
            fig13(&m),
            fig14(&m),
            energy_figure(&m),
        ] {
            assert!(!t.to_string().is_empty());
            assert!(t.num_rows() >= 1, "{} empty", t.title());
        }
    }

    #[test]
    fn tail_latency_figure_renders_and_orders() {
        let (results, profiles, schemes) = small_matrix();
        let m = MatrixView::new(&results, &profiles, &schemes);
        let t = tail_latency_figure(&m, "vips");
        assert_eq!(t.num_rows(), 2);
        // Tetris p99 must undercut the baseline's.
        let dcw_p99: f64 = t.cell(0, 3).parse().unwrap();
        let tetris_p99: f64 = t.cell(1, 3).parse().unwrap();
        assert!(tetris_p99 < dcw_p99, "{tetris_p99} vs {dcw_p99}");
    }

    #[test]
    fn normalized_baseline_column_is_one() {
        let (results, profiles, schemes) = small_matrix();
        let m = MatrixView::new(&results, &profiles, &schemes);
        let t = fig14(&m);
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, 1), "1.000", "baseline column normalizes to 1");
        }
    }

    #[test]
    fn vips_tetris_improves_runtime_and_ipc() {
        let (results, profiles, schemes) = small_matrix();
        let m = MatrixView::new(&results, &profiles, &schemes);
        let t14 = fig14(&m);
        // Row 1 is vips; column 2 is Tetris.
        let v: f64 = t14.cell(1, 2).parse().unwrap();
        assert!(v < 0.9, "vips runtime should drop: {v}");
        let t13 = fig13(&m);
        let i: f64 = t13.cell(1, 2).parse().unwrap();
        assert!(i > 1.1, "vips IPC should rise: {i}");
    }

    #[test]
    #[should_panic(expected = "matrix shape")]
    fn matrix_shape_checked() {
        let profiles = vec![ALL_PROFILES[0]];
        let schemes = vec![SchemeKind::Dcw];
        let results: Vec<SimResult> = Vec::new();
        let _ = MatrixView::new(&results, &profiles, &schemes);
    }
}
