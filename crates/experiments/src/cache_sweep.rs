//! The `cache-sweep` experiment: the DRAM write-cache tier measured per
//! (frame budget × replacement policy × workload) cell.
//!
//! Every cell runs the same workload under the Tetris scheme with the
//! write cache sized and steered per cell, records a telemetry trace
//! (the `WriteCacheHit` / `WriteCacheDrain` stream is the evidence), and
//! tables read-hit rate, coalesce ratio, drain bursts and end-to-end
//! service times. A `frames = 0` baseline row per workload pins the
//! disabled tier against the paper's pipeline.

use crate::report::{f2, Table};
use crate::runner::{run_one_to_file, RunConfig};
use crate::schemes::SchemeKind;
use pcm_memsim::{PolicySelect, SimResult, WriteCacheConfig};
use pcm_telemetry::{read_tagged_events, TraceDetail, TraceSummary};
use pcm_types::PcmError;
use pcm_workloads::WorkloadProfile;
use std::path::{Path, PathBuf};

/// One measured (workload × frames × policy) cell.
#[derive(Clone, Debug)]
pub struct CacheCell {
    /// Workload name.
    pub workload: String,
    /// Frame budget (0 = tier disabled, the baseline row).
    pub frames: usize,
    /// Replacement policy steering the tier (meaningless when disabled).
    pub policy: PolicySelect,
    /// The run's end-to-end statistics.
    pub result: SimResult,
    /// Trace rollup: write-cache hit/coalesce/drain counters.
    pub summary: TraceSummary,
    /// Recorded telemetry trace (render with `tetris-experiments report`).
    pub trace: PathBuf,
}

impl CacheCell {
    /// Fraction of loads served out of the DRAM tier, in `[0, 1]`.
    pub fn read_hit_rate(&self) -> f64 {
        let total = self.summary.write_cache_hits + self.result.mem_reads;
        if total == 0 {
            0.0
        } else {
            self.summary.write_cache_hits as f64 / total as f64
        }
    }

    /// Fraction of stores absorbed by coalescing, in `[0, 1]`.
    pub fn coalesce_ratio(&self) -> f64 {
        let total = self.summary.write_cache_coalesces + self.summary.write_cache_drained_lines;
        if total == 0 {
            0.0
        } else {
            self.summary.write_cache_coalesces as f64 / total as f64
        }
    }
}

/// Run the full sweep: for every workload, one disabled baseline plus one
/// cell per (frame budget × policy), each recording its trace under
/// `trace_dir`.
pub fn run_cache_sweep(
    profiles: &[WorkloadProfile],
    frames: &[usize],
    policies: &[PolicySelect],
    cfg: &RunConfig,
    trace_dir: &Path,
) -> Result<Vec<CacheCell>, PcmError> {
    std::fs::create_dir_all(trace_dir)
        .map_err(|e| PcmError::config(format!("cannot create {}: {e}", trace_dir.display())))?;
    let mut cells = Vec::new();
    for profile in profiles {
        cells.push(run_cell(profile, 0, PolicySelect::Lru, cfg, trace_dir)?);
        for &f in frames {
            for &p in policies {
                cells.push(run_cell(profile, f, p, cfg, trace_dir)?);
            }
        }
    }
    Ok(cells)
}

fn run_cell(
    profile: &WorkloadProfile,
    frames: usize,
    policy: PolicySelect,
    cfg: &RunConfig,
    trace_dir: &Path,
) -> Result<CacheCell, PcmError> {
    let mut cell_cfg = *cfg;
    cell_cfg.system.write_cache = if frames == 0 {
        WriteCacheConfig::disabled()
    } else {
        WriteCacheConfig::with_frames(frames, policy)
    };
    cell_cfg.system.validate()?;
    let tag = if frames == 0 {
        "off".to_string()
    } else {
        format!("{frames}-{policy}")
    };
    let trace = trace_dir.join(format!("cache-{}-{tag}.jsonl", profile.name));
    let (result, _written) = run_one_to_file(
        profile,
        SchemeKind::Tetris,
        &cell_cfg,
        &trace,
        TraceDetail::Fine,
    )
    .map_err(|e| PcmError::config(format!("cannot trace to {}: {e}", trace.display())))?;
    let file = std::fs::File::open(&trace)
        .map_err(|e| PcmError::config(format!("cannot reopen {}: {e}", trace.display())))?;
    let tagged = read_tagged_events(std::io::BufReader::new(file))
        .map_err(|e| PcmError::config(format!("cannot parse {}: {e}", trace.display())))?;
    let summary = TraceSummary::merged(&TraceSummary::by_rank(&tagged));
    Ok(CacheCell {
        workload: profile.name.to_string(),
        frames,
        policy,
        result,
        summary,
        trace,
    })
}

/// Render the sweep as one table, baseline rows first per workload.
pub fn cache_sweep_table(cells: &[CacheCell]) -> Table {
    let mut t = Table::new(
        "Write-cache sweep — DRAM tier vs frame budget and policy",
        &[
            "workload",
            "frames",
            "policy",
            "read hit %",
            "coalesce %",
            "drain bursts",
            "drained lines",
            "write ns",
            "read ns",
            "runtime µs",
        ],
    );
    for c in cells {
        t.row(vec![
            c.workload.clone(),
            if c.frames == 0 {
                "off".to_string()
            } else {
                c.frames.to_string()
            },
            if c.frames == 0 {
                "—".to_string()
            } else {
                c.policy.to_string()
            },
            f2(c.read_hit_rate() * 100.0),
            f2(c.coalesce_ratio() * 100.0),
            c.summary.write_cache_drains.to_string(),
            c.summary.write_cache_drained_lines.to_string(),
            f2(c.result.write_latency.mean_ns()),
            f2(c.result.read_latency.mean_ns()),
            f2(c.result.runtime.as_ns_f64() / 1000.0),
        ]);
    }
    t.note(
        "frames = off pins the disabled tier (bit-for-bit the paper's pipeline); \
         coalesce % = stores absorbed in DRAM / stores admitted",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_workloads::ALL_PROFILES;

    #[test]
    fn sweep_produces_distinct_policy_profiles() {
        let dir = std::env::temp_dir().join(format!("cache-sweep-test-{}", std::process::id()));
        let cfg = RunConfig::builder()
            .instructions_per_core(120_000)
            .build()
            .unwrap();
        let vips = ALL_PROFILES[7];
        let cells = run_cache_sweep(
            std::slice::from_ref(&vips),
            &[16],
            &PolicySelect::ALL,
            &cfg,
            &dir,
        )
        .unwrap();
        assert_eq!(cells.len(), 1 + PolicySelect::ALL.len());
        let base = &cells[0];
        assert_eq!(base.frames, 0);
        assert_eq!(base.summary.write_cache_drains, 0, "baseline has no tier");
        for c in &cells[1..] {
            assert!(c.coalesce_ratio() > 0.0, "{}: no coalescing", c.policy);
            assert!(c.summary.write_cache_drains > 0, "{}: no drains", c.policy);
            assert_eq!(
                c.summary.write_cache_drained_lines, c.result.mem_writes,
                "every drained line lands in PCM exactly once"
            );
            assert!(c.trace.exists(), "trace artifact recorded");
        }
        // The policies must not all collapse onto one profile: a tiny
        // frame budget makes the eviction order observable.
        let profiles: std::collections::BTreeSet<(u64, u64)> = cells[1..]
            .iter()
            .map(|c| {
                (
                    c.summary.write_cache_coalesces,
                    c.summary.write_cache_drains,
                )
            })
            .collect();
        assert!(
            profiles.len() > 1,
            "lru/clock/2q produced identical hit/drain profiles: {profiles:?}"
        );
        let table = cache_sweep_table(&cells);
        assert_eq!(table.num_rows(), cells.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
