//! The redesigned write driver (Fig. 9).
//!
//! For each 17-bit slice (X16 data + 1 flip bit) the driver receives:
//!
//! * `DX` — the new bits from the DMUX,
//! * the old bits from the read buffer,
//! * the FSM's *write signal* — whether this tick programs the Zero
//!   (RESET) or One (SET) side of the data unit.
//!
//! A XOR gate derives **PROG enable** (bit differs → may program); the
//! SET/RESET-enable logic selects bits whose target value matches the write
//! signal; the two are AND-ed, so current only flows into bits that both
//! *need* to change and are *scheduled* to change this tick. This is the
//! hardware mechanism that makes actual (not worst-case) current draw
//! visible to the scheduler.

/// Which polarity the FSM is driving this tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteSignal {
    /// FSM1 is driving write-1s (SET pulses).
    One,
    /// FSM0 is driving write-0s (RESET pulses).
    Zero,
}

/// The enable signals the driver asserts toward the array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct DriveOutputs {
    /// PROG-enable mask: bits that differ between old and new data.
    pub prog_enable: u64,
    /// Bits that receive a SET pulse this tick.
    pub set_enable: u64,
    /// Bits that receive a RESET pulse this tick.
    pub reset_enable: u64,
}

impl DriveOutputs {
    /// Number of cells drawing programming current this tick.
    pub const fn active_cells(&self) -> u32 {
        self.set_enable.count_ones() + self.reset_enable.count_ones()
    }

    /// Instantaneous current in SET-equivalents (`l_ratio` = RESET cost).
    pub const fn current(&self, l_ratio: u32) -> u32 {
        self.set_enable.count_ones() + self.reset_enable.count_ones() * l_ratio
    }
}

/// The write driver for one `width`-bit slice.
#[derive(Clone, Copy, Debug)]
pub struct WriteDriver {
    width_mask: u64,
}

impl WriteDriver {
    /// Driver for `width` bits (17 for an X16 chip slice + flip bit).
    ///
    /// # Panics
    /// If `width` is 0 or exceeds 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "driver width out of range");
        WriteDriver {
            width_mask: if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            },
        }
    }

    /// Combinational drive function.
    ///
    /// `old` are the bits from the read buffer, `new` the bits from the
    /// DMUX. Only bits selected by the write signal's polarity *and* the
    /// XOR-derived PROG enable are driven.
    pub fn drive(&self, old: u64, new: u64, signal: WriteSignal) -> DriveOutputs {
        let old = old & self.width_mask;
        let new = new & self.width_mask;
        let prog_enable = old ^ new;
        match signal {
            WriteSignal::One => DriveOutputs {
                prog_enable,
                set_enable: prog_enable & new,
                reset_enable: 0,
            },
            WriteSignal::Zero => DriveOutputs {
                prog_enable,
                set_enable: 0,
                reset_enable: prog_enable & !new,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::propcheck::any_u64;
    use pcm_types::{prop_assert_eq, propcheck};

    #[test]
    fn only_changed_bits_draw_current() {
        let d = WriteDriver::new(17);
        // old 0101, new 0110: bit1 needs SET, bit0 needs RESET.
        let one = d.drive(0b0101, 0b0110, WriteSignal::One);
        assert_eq!(one.set_enable, 0b0010);
        assert_eq!(one.reset_enable, 0);
        let zero = d.drive(0b0101, 0b0110, WriteSignal::Zero);
        assert_eq!(zero.reset_enable, 0b0001);
        assert_eq!(zero.set_enable, 0);
    }

    #[test]
    fn unchanged_data_is_inert() {
        let d = WriteDriver::new(17);
        let out = d.drive(0x1ABCD, 0x1ABCD, WriteSignal::One);
        assert_eq!(out.active_cells(), 0);
        assert_eq!(out.prog_enable, 0);
    }

    #[test]
    fn paper_example_set_without_prog_enable_is_blocked() {
        // "assume that the PROG enable signal of a certain bit is '0' …
        //  and its SET/RESET signal is 'SET' … it won't perform SET."
        let d = WriteDriver::new(17);
        // Bit 3 is already '1' in both old and new → no PROG enable.
        let out = d.drive(0b1000, 0b1000, WriteSignal::One);
        assert_eq!(out.set_enable & 0b1000, 0);
    }

    #[test]
    fn current_accounts_reset_asymmetry() {
        let d = WriteDriver::new(17);
        let out = d.drive(0b111, 0b000, WriteSignal::Zero);
        assert_eq!(out.active_cells(), 3);
        assert_eq!(out.current(2), 6, "3 RESETs at L = 2");
    }

    #[test]
    fn width_masks_extraneous_bits() {
        let d = WriteDriver::new(4);
        // Within the 4-bit width old and new agree; all differences are in
        // bits the driver doesn't own.
        let out = d.drive(0x0000_000F, 0xFFFF_FFFF, WriteSignal::One);
        assert_eq!(out.set_enable, 0, "bits above width 4 ignored");
        assert_eq!(out.prog_enable, 0);
    }

    propcheck! {
        /// Driving both phases together produces exactly the transition masks.
        fn phases_partition_prog_enable(old in any_u64(), new in any_u64()) {
            let d = WriteDriver::new(64);
            let one = d.drive(old, new, WriteSignal::One);
            let zero = d.drive(old, new, WriteSignal::Zero);
            prop_assert_eq!(one.set_enable & zero.reset_enable, 0);
            prop_assert_eq!(one.set_enable | zero.reset_enable, old ^ new);
            prop_assert_eq!(one.set_enable, new & !old);
            prop_assert_eq!(zero.reset_enable, old & !new);
        }

        /// Applying the drive outputs to the old bits yields the new bits.
        fn drive_outputs_realize_write(old in any_u64(), new in any_u64()) {
            let d = WriteDriver::new(64);
            let one = d.drive(old, new, WriteSignal::One);
            let zero = d.drive(old, new, WriteSignal::Zero);
            let result = (old | one.set_enable) & !zero.reset_enable;
            prop_assert_eq!(result, new);
        }
    }
}
