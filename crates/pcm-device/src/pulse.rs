//! Programming and read pulses (Fig. 1 of the paper).
//!
//! A RESET pulse is a short, tall current spike that melts the GST and
//! quenches it amorphous; a SET pulse is a long, lower-amplitude anneal that
//! recrystallizes it; a READ pulse is a tiny probe that senses the
//! resistance without disturbing the state.

use pcm_types::{PcmTimings, PowerParams, Ps};

/// Which operation a pulse performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PulseKind {
    /// Crystallize → logical '1'. Slow, low current.
    Set,
    /// Amorphize → logical '0'. Fast, high current.
    Reset,
    /// Sense resistance. Negligible current.
    Read,
}

/// One programming/read pulse: duration and amplitude in SET-equivalent
/// current units (1 SET-equivalent ≈ Cset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pulse {
    /// Operation performed.
    pub kind: PulseKind,
    /// Pulse width.
    pub duration: Ps,
    /// Instantaneous current draw in SET-equivalents.
    pub amplitude: u32,
}

impl Pulse {
    /// Charge delivered, in SET-equivalent × ps (proportional to energy at
    /// fixed voltage).
    pub const fn charge(&self) -> u64 {
        self.duration.as_ps() * self.amplitude as u64
    }
}

/// The pulse set a device is programmed with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PulseLibrary {
    /// SET pulse.
    pub set: Pulse,
    /// RESET pulse.
    pub reset: Pulse,
    /// READ pulse.
    pub read: Pulse,
}

impl PulseLibrary {
    /// Build the library from the timing/power parameter structs.
    ///
    /// Amplitudes: SET = 1 SET-equivalent, RESET = `L` (the power
    /// asymmetry), READ = 0 (sensing current is negligible next to
    /// programming current, per §II of the paper).
    pub fn from_params(t: &PcmTimings, p: &PowerParams) -> Self {
        PulseLibrary {
            set: Pulse {
                kind: PulseKind::Set,
                duration: t.t_set,
                amplitude: 1,
            },
            reset: Pulse {
                kind: PulseKind::Reset,
                duration: t.t_reset,
                amplitude: p.l_ratio,
            },
            read: Pulse {
                kind: PulseKind::Read,
                duration: t.t_read,
                amplitude: 0,
            },
        }
    }

    /// Paper-baseline library (Table II timings, L = 2).
    pub fn paper_baseline() -> Self {
        Self::from_params(
            &PcmTimings::paper_baseline(),
            &PowerParams::paper_baseline(),
        )
    }

    /// Pulse for a given kind.
    pub const fn get(&self, kind: PulseKind) -> Pulse {
        match kind {
            PulseKind::Set => self.set,
            PulseKind::Reset => self.reset,
            PulseKind::Read => self.read,
        }
    }

    /// The time asymmetry `Tset / Treset` rounded down (the paper's `K`).
    pub const fn time_asymmetry(&self) -> u64 {
        self.set.duration.as_ps() / self.reset.duration.as_ps()
    }

    /// The power asymmetry `Creset / Cset` (the paper's `L`).
    pub const fn power_asymmetry(&self) -> u32 {
        self.reset.amplitude / self.set.amplitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_asymmetries_match_paper() {
        let lib = PulseLibrary::paper_baseline();
        assert_eq!(lib.time_asymmetry(), 8, "Tset ≈ 8 × Treset");
        assert_eq!(lib.power_asymmetry(), 2, "Creset ≈ 2 × Cset");
        assert!(
            lib.set.duration > lib.reset.duration,
            "time asymmetry direction"
        );
        assert!(
            lib.reset.amplitude > lib.set.amplitude,
            "power asymmetry direction"
        );
    }

    #[test]
    fn read_draws_negligible_current() {
        let lib = PulseLibrary::paper_baseline();
        assert_eq!(lib.read.amplitude, 0);
        assert_eq!(lib.read.duration, Ps::from_ns(50));
    }

    #[test]
    fn charge_is_duration_times_amplitude() {
        let lib = PulseLibrary::paper_baseline();
        // SET: 430 000 ps × 1; RESET: 53 000 ps × 2.
        assert_eq!(lib.set.charge(), 430_000);
        assert_eq!(lib.reset.charge(), 106_000);
        // Energy asymmetry: a SET still costs ~4× a RESET despite lower
        // current, because it is ~8× longer.
        assert!(lib.set.charge() > 4 * lib.reset.charge());
    }

    #[test]
    fn get_by_kind() {
        let lib = PulseLibrary::paper_baseline();
        assert_eq!(lib.get(PulseKind::Set), lib.set);
        assert_eq!(lib.get(PulseKind::Reset), lib.reset);
        assert_eq!(lib.get(PulseKind::Read), lib.read);
    }
}
