//! Charge-pump current metering.
//!
//! The pump converts the supply rail into programming current; power-line
//! noise bounds its instantaneous output, which is the physical origin of
//! the write-unit limit. [`ChargePump`] meters one chip. With the **global
//! charge pump** (GCP, Jiang et al., adopted in §IV), a bridge chip and
//! dedicated wires let a chip *steal* headroom from its neighbours, making
//! the bank budget fungible — which is what lets Tetris Write schedule in
//! bank-level SET-equivalents. [`CurrentMeter`] tracks a whole timeline of
//! sub-write-unit slots so schedules can be audited tick by tick.

use pcm_types::PcmError;

/// Instantaneous current meter for one chip's pump.
#[derive(Clone, Copy, Debug)]
pub struct ChargePump {
    budget: u32,
    draw: u32,
}

impl ChargePump {
    /// A pump able to source `budget` SET-equivalents at once.
    pub const fn new(budget: u32) -> Self {
        ChargePump { budget, draw: 0 }
    }

    /// Maximum instantaneous output.
    pub const fn budget(&self) -> u32 {
        self.budget
    }

    /// Current draw right now.
    pub const fn draw(&self) -> u32 {
        self.draw
    }

    /// Remaining headroom.
    pub const fn headroom(&self) -> u32 {
        self.budget - self.draw
    }

    /// Reserve `amount` SET-equivalents; fails if the pump would sag.
    pub fn try_draw(&mut self, amount: u32) -> Result<(), PcmError> {
        if self.draw + amount > self.budget {
            return Err(PcmError::PowerBudgetViolation {
                slot: 0,
                demand: self.draw + amount,
                budget: self.budget,
            });
        }
        self.draw += amount;
        Ok(())
    }

    /// Release previously drawn current.
    ///
    /// # Panics
    /// If releasing more than is drawn (an accounting bug).
    pub fn release(&mut self, amount: u32) {
        assert!(amount <= self.draw, "releasing more current than drawn");
        self.draw -= amount;
    }
}

/// A bank's pumps: per-chip budgets plus GCP stealing.
#[derive(Clone, Debug)]
pub struct GlobalChargePump {
    chips: Vec<ChargePump>,
    gcp_enabled: bool,
}

impl GlobalChargePump {
    /// `chips` pumps of `budget_per_chip` each; `gcp_enabled` allows
    /// cross-chip stealing up to the summed bank budget.
    pub fn new(chips: usize, budget_per_chip: u32, gcp_enabled: bool) -> Self {
        GlobalChargePump {
            chips: vec![ChargePump::new(budget_per_chip); chips],
            gcp_enabled,
        }
    }

    /// Total bank budget.
    pub fn bank_budget(&self) -> u32 {
        self.chips.iter().map(|c| c.budget()).sum()
    }

    /// Total instantaneous draw across the bank.
    pub fn bank_draw(&self) -> u32 {
        self.chips.iter().map(|c| c.draw()).sum()
    }

    /// Try to source `amount` for chip `chip`.
    ///
    /// Without GCP the chip is limited to its own pump. With GCP the draw
    /// succeeds as long as the *bank* has headroom (the bridge chip routes
    /// neighbours' spare current).
    pub fn try_draw(&mut self, chip: usize, amount: u32) -> Result<(), PcmError> {
        if self.gcp_enabled {
            let total = self.bank_draw() + amount;
            if total > self.bank_budget() {
                return Err(PcmError::PowerBudgetViolation {
                    slot: 0,
                    demand: total,
                    budget: self.bank_budget(),
                });
            }
            // Account the draw against the requesting chip, spilling the
            // stolen excess onto the chips with headroom.
            let mut remaining = amount;
            let own = self.chips[chip].headroom().min(remaining);
            self.chips[chip].try_draw(own)?;
            remaining -= own;
            for (i, pump) in self.chips.iter_mut().enumerate() {
                if remaining == 0 {
                    break;
                }
                if i == chip {
                    continue;
                }
                let steal = pump.headroom().min(remaining);
                pump.try_draw(steal)?;
                remaining -= steal;
            }
            debug_assert_eq!(remaining, 0);
            Ok(())
        } else {
            self.chips[chip].try_draw(amount)
        }
    }

    /// Release `amount` from the bank (inverse of a successful `try_draw`).
    pub fn release(&mut self, amount: u32) {
        let mut remaining = amount;
        for pump in self.chips.iter_mut().rev() {
            let r = pump.draw().min(remaining);
            pump.release(r);
            remaining -= r;
            if remaining == 0 {
                return;
            }
        }
        assert_eq!(remaining, 0, "releasing more current than drawn");
    }
}

/// Slot-by-slot current audit of a write schedule.
///
/// Slot granularity is one sub-write-unit (Treset-scale); a write unit
/// spans `K` consecutive slots (Fig. 5).
#[derive(Clone, Debug, Default)]
pub struct CurrentMeter {
    slots: Vec<u32>,
    budget: u32,
}

impl CurrentMeter {
    /// Meter with the given budget and no slots yet.
    pub fn new(budget: u32) -> Self {
        CurrentMeter {
            slots: Vec::new(),
            budget,
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Add `amount` to every slot in `[start, end)`, enforcing the budget.
    pub fn add(&mut self, start: usize, end: usize, amount: u32) -> Result<(), PcmError> {
        if end > self.slots.len() {
            self.slots.resize(end, 0);
        }
        for slot in start..end {
            if self.slots[slot] + amount > self.budget {
                return Err(PcmError::PowerBudgetViolation {
                    slot,
                    demand: self.slots[slot] + amount,
                    budget: self.budget,
                });
            }
        }
        for slot in start..end {
            self.slots[slot] += amount;
        }
        Ok(())
    }

    /// Draw in one slot.
    pub fn slot_draw(&self, slot: usize) -> u32 {
        self.slots.get(slot).copied().unwrap_or(0)
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no current was ever metered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Peak instantaneous draw.
    pub fn peak(&self) -> u32 {
        self.slots.iter().copied().max().unwrap_or(0)
    }

    /// Average budget utilization over the occupied slots, in [0, 1].
    ///
    /// This is the quantity the paper's Observations say existing schemes
    /// leave at ~15–30%.
    pub fn utilization(&self) -> f64 {
        if self.slots.is_empty() || self.budget == 0 {
            return 0.0;
        }
        let used: u64 = self.slots.iter().map(|&s| s as u64).sum();
        used as f64 / (self.budget as u64 * self.slots.len() as u64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pump_enforces_budget() {
        let mut p = ChargePump::new(32);
        assert!(p.try_draw(30).is_ok());
        assert_eq!(p.headroom(), 2);
        assert!(p.try_draw(3).is_err(), "would sag the pump");
        assert!(p.try_draw(2).is_ok());
        p.release(32);
        assert_eq!(p.draw(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing more")]
    fn over_release_panics() {
        let mut p = ChargePump::new(32);
        p.release(1);
    }

    #[test]
    fn gcp_steals_across_chips() {
        // Uneven cache-line data: one chip needs 40 > its own 32.
        let mut g = GlobalChargePump::new(4, 32, true);
        assert!(g.try_draw(0, 40).is_ok(), "GCP steals 8 from neighbours");
        assert_eq!(g.bank_draw(), 40);
        assert!(g.try_draw(1, 88).is_ok(), "bank still has 128 − 40 = 88");
        assert!(g.try_draw(2, 1).is_err(), "bank budget exhausted");
        g.release(128);
        assert_eq!(g.bank_draw(), 0);
    }

    #[test]
    fn without_gcp_chip_budget_binds() {
        let mut g = GlobalChargePump::new(4, 32, false);
        assert!(g.try_draw(0, 40).is_err(), "no stealing without GCP");
        assert!(g.try_draw(0, 32).is_ok());
    }

    #[test]
    fn meter_detects_violation_slot() {
        let mut m = CurrentMeter::new(128);
        m.add(0, 8, 100).unwrap();
        let err = m.add(4, 6, 40).unwrap_err();
        match err {
            PcmError::PowerBudgetViolation {
                slot,
                demand,
                budget,
            } => {
                assert_eq!(slot, 4);
                assert_eq!(demand, 140);
                assert_eq!(budget, 128);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Failed add must not partially apply.
        assert_eq!(m.slot_draw(4), 100);
    }

    #[test]
    fn meter_utilization() {
        let mut m = CurrentMeter::new(100);
        m.add(0, 2, 50).unwrap();
        assert_eq!(m.peak(), 50);
        assert!((m.utilization() - 0.5).abs() < 1e-9);
        m.add(0, 1, 50).unwrap();
        assert_eq!(m.peak(), 100);
        assert!((m.utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn meter_grows_on_demand() {
        let mut m = CurrentMeter::new(10);
        assert!(m.is_empty());
        m.add(5, 7, 3).unwrap();
        assert_eq!(m.len(), 7);
        assert_eq!(m.slot_draw(0), 0);
        assert_eq!(m.slot_draw(6), 3);
    }
}
