//! Cell blocks: the rows × columns arrays a chip is tiled from.
//!
//! A block stores up to 64 cells per row packed into one word, with per-cell
//! wear counters. Programming is differential at the mask level: callers
//! pass explicit SET and RESET masks and only those cells receive pulses.

use crate::cell::{CellState, PcmCell};
use crate::pulse::{Pulse, PulseKind};
use pcm_types::PcmError;

/// A rows × cols array of PCM cells (cols ≤ 64).
#[derive(Clone, Debug)]
pub struct CellBlock {
    rows: usize,
    cols: usize,
    /// Packed logical bits, one word per row (bit `c` = column `c`).
    bits: Vec<u64>,
    /// Per-cell wear, row-major.
    wear: Vec<u32>,
}

impl CellBlock {
    /// Create a block of amorphous ('0') cells.
    ///
    /// # Errors
    /// If `cols` is 0 or exceeds 64, or `rows` is 0.
    pub fn new(rows: usize, cols: usize) -> Result<Self, PcmError> {
        if rows == 0 || cols == 0 || cols > 64 {
            return Err(PcmError::config(
                "CellBlock needs 1..=64 columns and ≥1 row",
            ));
        }
        Ok(CellBlock {
            rows,
            cols,
            bits: vec![0; rows],
            wear: vec![0; rows * cols],
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mask with a '1' for every valid column.
    pub fn col_mask(&self) -> u64 {
        if self.cols == 64 {
            u64::MAX
        } else {
            (1u64 << self.cols) - 1
        }
    }

    /// Sense an entire row (reads are wide and cheap; hundreds of cells can
    /// be read concurrently, per §II).
    pub fn read_row(&self, row: usize) -> Result<u64, PcmError> {
        self.check_row(row)?;
        Ok(self.bits[row])
    }

    /// Apply SET pulses to `set_mask` cells and RESET pulses to
    /// `reset_mask` cells of one row.
    ///
    /// # Errors
    /// If the row is out of range, a mask touches a nonexistent column, or
    /// the masks overlap (a cell cannot be SET and RESET simultaneously).
    pub fn program_row(
        &mut self,
        row: usize,
        set_mask: u64,
        reset_mask: u64,
    ) -> Result<(), PcmError> {
        self.check_row(row)?;
        if set_mask & reset_mask != 0 {
            return Err(PcmError::config("SET and RESET masks overlap"));
        }
        if (set_mask | reset_mask) & !self.col_mask() != 0 {
            return Err(PcmError::config("mask touches nonexistent column"));
        }
        self.bits[row] = (self.bits[row] | set_mask) & !reset_mask;
        let mut touched = set_mask | reset_mask;
        while touched != 0 {
            let c = touched.trailing_zeros() as usize;
            self.wear[row * self.cols + c] += 1;
            touched &= touched - 1;
        }
        Ok(())
    }

    /// View one cell (for tests/diagnostics).
    pub fn cell(&self, row: usize, col: usize) -> Result<PcmCell, PcmError> {
        self.check_row(row)?;
        if col >= self.cols {
            return Err(PcmError::config("column out of range"));
        }
        let bit = self.bits[row] >> col & 1 == 1;
        let mut c = PcmCell::new(bit);
        // Reconstruct wear by replaying the counter into the cell.
        for _ in 0..self.wear[row * self.cols + col] {
            let kind = if bit {
                PulseKind::Set
            } else {
                PulseKind::Reset
            };
            c.apply(Pulse {
                kind,
                duration: pcm_types::Ps::ZERO,
                amplitude: 0,
            });
        }
        Ok(c)
    }

    /// Wear of one cell.
    pub fn cell_wear(&self, row: usize, col: usize) -> u32 {
        self.wear[row * self.cols + col]
    }

    /// Maximum wear across the block (endurance-limiting cell).
    pub fn max_wear(&self) -> u32 {
        self.wear.iter().copied().max().unwrap_or(0)
    }

    /// Total programming pulses absorbed by the block.
    pub fn total_wear(&self) -> u64 {
        self.wear.iter().map(|&w| w as u64).sum()
    }

    /// State of one cell.
    pub fn cell_state(&self, row: usize, col: usize) -> CellState {
        CellState::from_bit(self.bits[row] >> col & 1 == 1)
    }

    fn check_row(&self, row: usize) -> Result<(), PcmError> {
        if row >= self.rows {
            return Err(PcmError::config(format!("row {row} out of range")));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::propcheck::any_u64;
    use pcm_types::{prop_assert_eq, propcheck};

    #[test]
    fn program_and_read() {
        let mut b = CellBlock::new(4, 17).unwrap();
        b.program_row(2, 0b1_0101, 0).unwrap();
        assert_eq!(b.read_row(2).unwrap(), 0b1_0101);
        b.program_row(2, 0b0_1000, 0b1_0001).unwrap();
        assert_eq!(b.read_row(2).unwrap(), 0b0_1100);
    }

    #[test]
    fn wear_counts_only_programmed_cells() {
        let mut b = CellBlock::new(1, 8).unwrap();
        b.program_row(0, 0b11, 0).unwrap();
        b.program_row(0, 0, 0b01).unwrap();
        assert_eq!(b.cell_wear(0, 0), 2);
        assert_eq!(b.cell_wear(0, 1), 1);
        assert_eq!(b.cell_wear(0, 2), 0);
        assert_eq!(b.total_wear(), 3);
        assert_eq!(b.max_wear(), 2);
    }

    #[test]
    fn overlapping_masks_rejected() {
        let mut b = CellBlock::new(1, 8).unwrap();
        assert!(b.program_row(0, 0b1, 0b1).is_err());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = CellBlock::new(2, 16).unwrap();
        assert!(b.read_row(2).is_err());
        assert!(
            b.program_row(0, 1 << 16, 0).is_err(),
            "column 16 does not exist"
        );
        assert!(CellBlock::new(0, 8).is_err());
        assert!(CellBlock::new(8, 65).is_err());
    }

    #[test]
    fn full_width_block() {
        let mut b = CellBlock::new(1, 64).unwrap();
        assert_eq!(b.col_mask(), u64::MAX);
        b.program_row(0, u64::MAX, 0).unwrap();
        assert_eq!(b.read_row(0).unwrap(), u64::MAX);
    }

    propcheck! {
        fn program_is_masked_update(init in any_u64(), set in any_u64(), reset in any_u64()) {
            let set = set & !reset;
            let mut b = CellBlock::new(1, 64).unwrap();
            b.program_row(0, init, !init).unwrap();
            b.program_row(0, set, reset).unwrap();
            prop_assert_eq!(b.read_row(0).unwrap(), (init | set) & !reset);
        }

        fn wear_equals_popcounts(set in any_u64(), reset in any_u64()) {
            let set = set & !reset;
            let mut b = CellBlock::new(1, 64).unwrap();
            b.program_row(0, set, reset).unwrap();
            prop_assert_eq!(
                b.total_wear(),
                (set.count_ones() + reset.count_ones()) as u64
            );
        }
    }
}
