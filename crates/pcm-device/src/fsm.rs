//! FSM0 / FSM1 — the dual finite state machines of the individually-write
//! stage (Fig. 8).
//!
//! FSM1 pops data units from the write-1 queue, asserts the MUX select and
//! write-1 signal for `Tset` (= `K` sub-write-unit slots), then moves on;
//! FSM0 does the same for write-0s at `Treset` (one slot) cadence. The two
//! machines run *independently and simultaneously* — that concurrency is
//! what lets the fast write-0s hide inside the long write-1 pulses.
//!
//! [`FsmExecutor`] replays a schedule against a [`PcmBank`], metering
//! instantaneous bank current in every sub-slot (and per-chip current when
//! GCP is disabled). Execution fails loudly if any tick would exceed the
//! budget — this is the independent check that an analysis-stage schedule
//! is physically realizable.

use crate::bank::PcmBank;
use crate::charge_pump::CurrentMeter;
use crate::write_driver::WriteSignal;
use pcm_types::{PcmError, PcmTimings, Ps};

/// Polarity of a scheduled pulse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOp {
    /// A SET pulse handled by FSM1 (spans `K` sub-slots).
    Set,
    /// A RESET pulse handled by FSM0 (spans 1 sub-slot).
    Reset,
}

/// One scheduled pulse: program all `op`-polarity transitions of data unit
/// `unit_row` toward `(new_data, new_flip)`, starting at sub-slot
/// `start_slot`.
#[derive(Clone, Copy, Debug)]
pub struct ScheduledBitWrite {
    /// Bank row (data-unit index).
    pub unit_row: usize,
    /// Pulse polarity.
    pub op: WriteOp,
    /// Sub-write-unit slot where the pulse begins.
    pub start_slot: usize,
    /// Target data for the unit (stored bits, already flip-encoded).
    pub new_data: u64,
    /// Target flip tag.
    pub new_flip: bool,
}

/// Result of executing a schedule.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Sub-slots from time zero to the last pulse's end.
    pub makespan_slots: usize,
    /// Makespan in time units.
    pub makespan: Ps,
    /// Peak bank current observed (SET-equivalents).
    pub peak_current: u32,
    /// Average budget utilization over the makespan.
    pub utilization: f64,
    /// Total SET pulses delivered to cells.
    pub cell_sets: u64,
    /// Total RESET pulses delivered to cells.
    pub cell_resets: u64,
}

/// Replays schedules produced by an analysis stage against a bank.
#[derive(Debug)]
pub struct FsmExecutor {
    timings: PcmTimings,
}

impl FsmExecutor {
    /// Executor with the given pulse timings.
    pub fn new(timings: PcmTimings) -> Result<Self, PcmError> {
        timings.validate()?;
        Ok(FsmExecutor { timings })
    }

    /// Sub-slots one pulse of `op` occupies.
    pub fn slots_for(&self, op: WriteOp) -> usize {
        match op {
            WriteOp::Set => self.timings.k_ratio() as usize,
            WriteOp::Reset => 1,
        }
    }

    /// Execute `jobs` against `bank`, enforcing the instantaneous budget in
    /// every sub-slot.
    ///
    /// Jobs may arrive in any order; currents are derived from the actual
    /// bit transitions at drive time (the write driver's PROG-enable
    /// gating), exactly as the hardware would draw them.
    pub fn execute(
        &self,
        bank: &mut PcmBank,
        jobs: &[ScheduledBitWrite],
    ) -> Result<ExecutionReport, PcmError> {
        let l = bank.power().l_ratio;
        let mut bank_meter = CurrentMeter::new(bank.power().budget_per_bank);
        let mut chip_meters: Vec<CurrentMeter> = if bank.gcp_enabled() {
            Vec::new()
        } else {
            (0..bank.num_chips())
                .map(|_| CurrentMeter::new(bank.power().budget_per_chip()))
                .collect()
        };

        // Drive in slot order so overlapping jobs on the same unit behave
        // like the hardware (earlier pulses commit before later ones read).
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| (jobs[i].start_slot, matches!(jobs[i].op, WriteOp::Reset)));

        let mut makespan_slots = 0usize;
        let mut cell_sets = 0u64;
        let mut cell_resets = 0u64;

        for &i in &order {
            let job = &jobs[i];
            let signal = match job.op {
                WriteOp::Set => WriteSignal::One,
                WriteOp::Reset => WriteSignal::Zero,
            };
            let slots = self.slots_for(job.op);
            let end = job.start_slot + slots;

            let drive = bank.drive_unit(job.unit_row, job.new_data, job.new_flip, signal)?;
            let current = drive.total_current(l);
            bank_meter.add(job.start_slot, end, current)?;
            for (c, m) in chip_meters.iter_mut().enumerate() {
                m.add(job.start_slot, end, drive.per_chip[c].current(l))?;
            }
            for out in &drive.per_chip {
                cell_sets += out.set_enable.count_ones() as u64;
                cell_resets += out.reset_enable.count_ones() as u64;
            }
            makespan_slots = makespan_slots.max(end);
        }

        Ok(ExecutionReport {
            makespan_slots,
            makespan: self.timings.sub_unit_duration() * makespan_slots as u64,
            peak_current: bank_meter.peak(),
            utilization: bank_meter.utilization(),
            cell_sets,
            cell_resets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::PowerParams;

    fn bank() -> PcmBank {
        PcmBank::new(1, 8, PowerParams::paper_baseline(), true).unwrap()
    }

    fn exec() -> FsmExecutor {
        FsmExecutor::new(PcmTimings::paper_baseline()).unwrap()
    }

    #[test]
    fn set_spans_k_slots_reset_one() {
        let e = exec();
        assert_eq!(e.slots_for(WriteOp::Set), 8);
        assert_eq!(e.slots_for(WriteOp::Reset), 1);
    }

    #[test]
    fn executes_both_phases_to_final_data() {
        let mut b = bank();
        b.write_unit_immediate(0, 0xFF00, false).unwrap();
        let jobs = [
            ScheduledBitWrite {
                unit_row: 0,
                op: WriteOp::Set,
                start_slot: 0,
                new_data: 0x0FF0,
                new_flip: false,
            },
            ScheduledBitWrite {
                unit_row: 0,
                op: WriteOp::Reset,
                start_slot: 0,
                new_data: 0x0FF0,
                new_flip: false,
            },
        ];
        let report = exec().execute(&mut b, &jobs).unwrap();
        assert_eq!(b.read_unit(0).unwrap(), (0x0FF0, false));
        assert_eq!(report.makespan_slots, 8, "SET dominates the makespan");
        // 4 SETs (1 each) overlap with 4 RESETs (2 each) in slot 0.
        assert_eq!(report.peak_current, 4 + 8);
        assert_eq!(report.cell_sets, 4);
        assert_eq!(report.cell_resets, 4);
    }

    #[test]
    fn budget_violation_is_detected() {
        let mut b = bank();
        // Two units all-ones → each needs 64 SETs; together 128 fits, but a
        // third concurrent unit overflows 128.
        let mk = |row| ScheduledBitWrite {
            unit_row: row,
            op: WriteOp::Set,
            start_slot: 0,
            new_data: u64::MAX,
            new_flip: false,
        };
        assert!(exec().execute(&mut b, &[mk(0), mk(1)]).is_ok());

        let mut b = bank();
        let err = exec().execute(&mut b, &[mk(0), mk(1), mk(2)]).unwrap_err();
        assert!(matches!(err, PcmError::PowerBudgetViolation { .. }));
    }

    #[test]
    fn resets_hide_inside_sets() {
        let mut b = bank();
        b.write_unit_immediate(1, u64::MAX, false).unwrap();
        // Unit 0: 32 SETs for 8 slots. Unit 1: 32 RESETs (64 current) can
        // slot into any single sub-slot alongside.
        let jobs = [
            ScheduledBitWrite {
                unit_row: 0,
                op: WriteOp::Set,
                start_slot: 0,
                new_data: 0xFFFF_FFFF,
                new_flip: false,
            },
            ScheduledBitWrite {
                unit_row: 1,
                op: WriteOp::Reset,
                start_slot: 3,
                new_data: 0xFFFF_FFFF_0000_0000,
                new_flip: false,
            },
        ];
        let report = exec().execute(&mut b, &jobs).unwrap();
        assert_eq!(report.makespan_slots, 8, "RESET added no time");
        assert_eq!(report.peak_current, 32 + 64);
    }

    #[test]
    fn per_chip_budget_binds_without_gcp() {
        let mut b = PcmBank::new(1, 8, PowerParams::paper_baseline(), false).unwrap();
        // 33 SETs all in chip 0's slice? Chip slice is 16 bits, so use a
        // RESET-heavy unit instead: 16 data bits + flip in chip 0 won't
        // exceed 32 alone; use RESETs: 16 RESETs × 2 = 32 fits; adding one
        // SET (flip) → 33 > 32 per-chip budget.
        b.write_unit_immediate(0, 0xFFFF, false).unwrap();
        let job = ScheduledBitWrite {
            unit_row: 0,
            op: WriteOp::Reset,
            start_slot: 0,
            new_data: 0,
            new_flip: false,
        };
        // 16 RESETs in chip 0 = 32 current: exactly at the chip budget.
        assert!(exec().execute(&mut b, &[job]).is_ok());

        // Now also SET the flip cell of the same unit in the same slot —
        // chip 0 would need 33.
        let mut b = PcmBank::new(1, 8, PowerParams::paper_baseline(), false).unwrap();
        b.write_unit_immediate(0, 0xFFFF, false).unwrap();
        let jobs = [
            job,
            ScheduledBitWrite {
                unit_row: 0,
                op: WriteOp::Set,
                start_slot: 0,
                new_data: 0,
                new_flip: true,
            },
        ];
        let err = exec().execute(&mut b, &jobs).unwrap_err();
        assert!(matches!(err, PcmError::PowerBudgetViolation { .. }));

        // With GCP the same schedule is fine.
        let mut b = bank();
        b.write_unit_immediate(0, 0xFFFF, false).unwrap();
        assert!(exec().execute(&mut b, &jobs).is_ok());
    }

    #[test]
    fn empty_schedule_is_trivial() {
        let mut b = bank();
        let report = exec().execute(&mut b, &[]).unwrap();
        assert_eq!(report.makespan_slots, 0);
        assert_eq!(report.makespan, Ps::ZERO);
        assert_eq!(report.peak_current, 0);
    }
}
