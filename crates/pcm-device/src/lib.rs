//! # pcm-device
//!
//! Structural and behavioural model of the PCM hardware the paper's write
//! schemes run on, mirroring the Samsung PRAM prototype the authors modified
//! (their Fig. 6–9):
//!
//! * [`pulse`] — SET/RESET/READ programming pulses and their time/current
//!   asymmetries (Fig. 1).
//! * [`cell`] — a single GST cell: amorphous/crystalline state, resistance
//!   contrast, programming, and wear.
//! * [`mod@array`] — cell blocks (rows × columns of cells) with per-row wear.
//! * [`write_driver`] — the redesigned write driver (Fig. 9): XOR-derived
//!   PROG-enable gating AND-ed with SET/RESET enables so only changed bits
//!   draw programming current.
//! * [`charge_pump`] — instantaneous-current metering per chip plus the
//!   global charge pump (GCP) that lets chips steal current from each other.
//! * [`chip`] — the chip datapath (Fig. 6): cell blocks, GYDEC column
//!   select, sense amps, DOUT buffer, the X136 write buffer, 0/1 counters,
//!   and the Reg0/Reg1 label/count registers.
//! * [`bank`] — a memory bank: four X16 chips behind one 64-bit datapath
//!   with a shared row buffer.
//! * [`fsm`] — the FSM0/FSM1 executors (Fig. 8) that replay a write
//!   schedule tick by tick, asserting MUX-select and write signals, while
//!   the charge pump checks the instantaneous budget on every tick.
//! * [`fsm_clocked`] — the same machines stepped at the 400 MHz memory-bus
//!   clock with explicit states and cycle counters, quantifying the clock
//!   quantization a real controller pays on top of Eq. 5.
//! * [`verify`] — program-and-verify with injectable per-bit pulse
//!   failures: the realism/fault-injection hook behind the chips'
//!   "program-and-verification circuits".
//! * [`mlc`] — 2-bit MLC cells with program-and-verify staircase writes,
//!   the device-level groundwork behind the GCP substrate's original MLC
//!   setting (and the reason the paper sticks to SLC).
//!
//! The device model is *bit-accurate but compact*: cells store logical
//! state + wear, not analog dynamics. It exists so that schedules produced
//! by the `tetris-write` analysis stage can be **executed** and checked —
//! final array contents must equal the intended data and no tick may exceed
//! the power budget — rather than merely trusted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bank;
pub mod cell;
pub mod charge_pump;
pub mod chip;
pub mod fsm;
pub mod fsm_clocked;
pub mod mlc;
pub mod pulse;
pub mod verify;
pub mod write_driver;

pub use array::CellBlock;
pub use bank::PcmBank;
pub use cell::{CellState, PcmCell};
pub use charge_pump::{ChargePump, CurrentMeter, GlobalChargePump};
pub use chip::PcmChip;
pub use fsm::{FsmExecutor, ScheduledBitWrite, WriteOp};
pub use fsm_clocked::{ClockedFsmPair, ClockedReport};
pub use mlc::{MlcCell, MlcLevel, MlcProgramParams};
pub use pulse::{Pulse, PulseKind, PulseLibrary};
pub use verify::{program_row_verified, VerifyParams, VerifyReport};
pub use write_driver::{DriveOutputs, WriteDriver, WriteSignal};
