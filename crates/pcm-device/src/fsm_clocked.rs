//! A clocked, state-by-state model of FSM0/FSM1 (Fig. 8), driven by the
//! memory-bus clock.
//!
//! [`crate::fsm::FsmExecutor`] replays schedules at sub-slot granularity
//! with exact picosecond timing; this module instead walks the two state
//! machines the way the hardware does — `GetUnits → assert MUX + write
//! signals → initialize counter → wait until the counter expires → repeat`
//! — one clock tick at a time. Because counters count whole clock cycles,
//! pulse windows quantize up (`Tset = 430 ns → 172 cycles` at 400 MHz, a
//! sub-slot `Tset/8 = 53.75 ns → 22 cycles = 55 ns`), so the clocked
//! makespan is slightly *longer* than Eq. 5 — the quantization cost of a
//! real controller, bounded at a few percent (tested).

use crate::bank::PcmBank;
use crate::fsm::{ScheduledBitWrite, WriteOp};
use crate::write_driver::WriteSignal;
use pcm_types::{PcmError, PcmTimings, Ps};
use std::collections::VecDeque;

/// One queue entry: a pulse scheduled at a sub-slot index.
#[derive(Clone, Copy, Debug)]
struct QueueEntry {
    start_slot: usize,
    job: ScheduledBitWrite,
}

/// The Fig. 8 states (shared by both machines; the counter target differs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FsmState {
    /// Pop the next unit(s) from the queue; assert MUX + write signals.
    GetUnits,
    /// Count down `Tset` (FSM1) / one sub-slot (FSM0) in clock cycles.
    Wait {
        /// Remaining cycles before the pulse window closes.
        counter: u64,
    },
    /// Queue drained.
    Idle,
}

/// Execution report of the clocked run.
#[derive(Clone, Debug)]
pub struct ClockedReport {
    /// Clock ticks until both FSMs idle.
    pub ticks: u64,
    /// Wall-clock makespan (`ticks × Tclk`).
    pub makespan: Ps,
    /// Pulses issued by FSM1 (write-1 pulses, possibly chunked).
    pub fsm1_pulses: u64,
    /// Pulses issued by FSM0 (write-0 pulses).
    pub fsm0_pulses: u64,
}

/// Clocked executor for a schedule's FSM queues.
#[derive(Debug)]
pub struct ClockedFsmPair {
    timings: PcmTimings,
    clk: Ps,
    slot_cycles: u64,
    set_cycles: u64,
}

impl ClockedFsmPair {
    /// Executor at `clock_mhz` (the paper's memory bus runs at 400 MHz).
    pub fn new(timings: PcmTimings, clock_mhz: u64) -> Result<Self, PcmError> {
        timings.validate()?;
        if clock_mhz == 0 {
            return Err(PcmError::config("clock must be non-zero"));
        }
        let clk = Ps::from_cycles(1, clock_mhz);
        // Counters quantize pulse windows up to whole cycles.
        let slot_cycles = timings.sub_unit_duration().div_ceil_duration(clk);
        let set_cycles = slot_cycles * timings.k_ratio();
        Ok(ClockedFsmPair {
            timings,
            clk,
            slot_cycles,
            set_cycles,
        })
    }

    /// Clock period.
    pub fn clock(&self) -> Ps {
        self.clk
    }

    /// Cycles one sub-slot occupies.
    pub fn slot_cycles(&self) -> u64 {
        self.slot_cycles
    }

    /// Run the schedule to completion, tick by tick.
    ///
    /// Jobs are split into the two queues exactly as the analysis stage
    /// hands them over; each FSM pops entries whose slot has arrived,
    /// drives the bank through the write driver, and waits out its counter.
    pub fn execute(
        &self,
        bank: &mut PcmBank,
        jobs: &[ScheduledBitWrite],
    ) -> Result<ClockedReport, PcmError> {
        let mut q1: VecDeque<QueueEntry> = jobs
            .iter()
            .filter(|j| j.op == WriteOp::Set)
            .map(|&job| QueueEntry {
                start_slot: job.start_slot,
                job,
            })
            .collect();
        let mut q0: VecDeque<QueueEntry> = jobs
            .iter()
            .filter(|j| j.op == WriteOp::Reset)
            .map(|&job| QueueEntry {
                start_slot: job.start_slot,
                job,
            })
            .collect();
        let by_slot = |a: &QueueEntry, b: &QueueEntry| a.start_slot.cmp(&b.start_slot);
        q1.make_contiguous().sort_by(by_slot);
        q0.make_contiguous().sort_by(by_slot);

        let mut s1 = if q1.is_empty() {
            FsmState::Idle
        } else {
            FsmState::GetUnits
        };
        let mut s0 = if q0.is_empty() {
            FsmState::Idle
        } else {
            FsmState::GetUnits
        };
        let mut tick: u64 = 0;
        let mut busy_until: u64 = 0; // ticks with at least one pulse window open
        let mut fsm1_pulses = 0u64;
        let mut fsm0_pulses = 0u64;
        // Hard stop: every job serialized end to end, plus slack.
        let limit = (jobs.len() as u64 + 2) * self.set_cycles + 64;

        while s1 != FsmState::Idle || s0 != FsmState::Idle {
            if tick > limit {
                return Err(PcmError::IncompleteSchedule(
                    "clocked FSMs failed to drain their queues".into(),
                ));
            }
            // FSM1: one SET window at a time, aligned to its scheduled slot.
            s1 = match s1 {
                FsmState::GetUnits => match q1.front() {
                    None => FsmState::Idle,
                    Some(e) if (e.start_slot as u64) * self.slot_cycles <= tick => {
                        // Pop every unit scheduled in this write unit's
                        // window (same start slot) — they share the pulse.
                        let slot = e.start_slot;
                        while q1.front().is_some_and(|e| e.start_slot == slot) {
                            let Some(e) = q1.pop_front() else { break };
                            bank.drive_unit(
                                e.job.unit_row,
                                e.job.new_data,
                                e.job.new_flip,
                                WriteSignal::One,
                            )?;
                            fsm1_pulses += 1;
                        }
                        busy_until = busy_until.max(tick + self.set_cycles);
                        FsmState::Wait {
                            counter: self.set_cycles,
                        }
                    }
                    Some(_) => FsmState::GetUnits, // scheduled later; hold
                },
                FsmState::Wait { counter: 1 } => FsmState::GetUnits,
                FsmState::Wait { counter } => FsmState::Wait {
                    counter: counter - 1,
                },
                FsmState::Idle => FsmState::Idle,
            };
            // FSM0: one sub-slot window at a time.
            s0 = match s0 {
                FsmState::GetUnits => match q0.front() {
                    None => FsmState::Idle,
                    Some(e) if (e.start_slot as u64) * self.slot_cycles <= tick => {
                        let slot = e.start_slot;
                        while q0.front().is_some_and(|e| e.start_slot == slot) {
                            let Some(e) = q0.pop_front() else { break };
                            bank.drive_unit(
                                e.job.unit_row,
                                e.job.new_data,
                                e.job.new_flip,
                                WriteSignal::Zero,
                            )?;
                            fsm0_pulses += 1;
                        }
                        busy_until = busy_until.max(tick + self.slot_cycles);
                        FsmState::Wait {
                            counter: self.slot_cycles,
                        }
                    }
                    Some(_) => FsmState::GetUnits,
                },
                FsmState::Wait { counter: 1 } => FsmState::GetUnits,
                FsmState::Wait { counter } => FsmState::Wait {
                    counter: counter - 1,
                },
                FsmState::Idle => FsmState::Idle,
            };
            tick += 1;
        }
        let ticks = busy_until;
        Ok(ClockedReport {
            ticks,
            makespan: self.clk * ticks,
            fsm1_pulses,
            fsm0_pulses,
        })
    }

    /// The quantization stretch factor relative to exact sub-slot timing.
    pub fn quantization_factor(&self) -> f64 {
        (self.clk * self.slot_cycles).as_ps() as f64
            / self.timings.sub_unit_duration().as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::PowerParams;

    fn bank() -> PcmBank {
        PcmBank::new(1, 8, PowerParams::paper_baseline(), true).unwrap()
    }

    fn pair() -> ClockedFsmPair {
        ClockedFsmPair::new(PcmTimings::paper_baseline(), 400).unwrap()
    }

    #[test]
    fn counters_quantize_up() {
        let p = pair();
        assert_eq!(p.clock(), Ps(2_500), "400 MHz");
        // Sub-slot 53.75 ns → 22 cycles = 55 ns.
        assert_eq!(p.slot_cycles(), 22);
        assert!((p.quantization_factor() - 55.0 / 53.75).abs() < 1e-9);
    }

    #[test]
    fn simple_write_completes_with_bounded_stretch() {
        let mut b = bank();
        let jobs = [
            ScheduledBitWrite {
                unit_row: 0,
                op: WriteOp::Set,
                start_slot: 0,
                new_data: 0xF0F0,
                new_flip: false,
            },
            ScheduledBitWrite {
                unit_row: 1,
                op: WriteOp::Reset,
                start_slot: 2,
                new_data: 0,
                new_flip: false,
            },
        ];
        b.write_unit_immediate(1, 0xFF, false).unwrap();
        let r = pair().execute(&mut b, &jobs).unwrap();
        assert_eq!(b.read_unit(0).unwrap().0, 0xF0F0);
        assert_eq!(b.read_unit(1).unwrap().0, 0);
        assert_eq!(r.fsm1_pulses, 1);
        assert_eq!(r.fsm0_pulses, 1);
        // One SET window: 176 cycles = 440 ns; Eq. 5 would say 430 ns.
        assert_eq!(r.ticks, 176);
        let exact = Ps::from_ns(430);
        let stretch = r.makespan.as_ps() as f64 / exact.as_ps() as f64;
        assert!((1.0..1.03).contains(&stretch), "stretch {stretch}");
    }

    #[test]
    fn matches_slot_executor_contents_on_real_schedules() {
        use crate::fsm::FsmExecutor;
        // Two write units of SETs + stolen RESETs, like a Tetris schedule.
        let jobs = [
            ScheduledBitWrite {
                unit_row: 0,
                op: WriteOp::Set,
                start_slot: 0,
                new_data: 0xFFFF,
                new_flip: false,
            },
            ScheduledBitWrite {
                unit_row: 1,
                op: WriteOp::Set,
                start_slot: 0,
                new_data: 0xFF,
                new_flip: true,
            },
            ScheduledBitWrite {
                unit_row: 2,
                op: WriteOp::Set,
                start_slot: 8,
                new_data: 0xF0F0_F0F0,
                new_flip: false,
            },
            ScheduledBitWrite {
                unit_row: 3,
                op: WriteOp::Reset,
                start_slot: 3,
                new_data: 0,
                new_flip: false,
            },
        ];
        let mut init = bank();
        init.write_unit_immediate(3, 0b111, false).unwrap();
        let mut exact_bank = init.clone();
        let mut clocked_bank = init;
        let exact = FsmExecutor::new(PcmTimings::paper_baseline())
            .unwrap()
            .execute(&mut exact_bank, &jobs)
            .unwrap();
        let clocked = pair().execute(&mut clocked_bank, &jobs).unwrap();
        // Same final contents…
        for row in 0..4 {
            assert_eq!(
                exact_bank.read_unit(row).unwrap(),
                clocked_bank.read_unit(row).unwrap(),
                "row {row}"
            );
        }
        // …same pulse counts, makespan within the quantization bound.
        assert_eq!(clocked.fsm1_pulses + clocked.fsm0_pulses, 4);
        let stretch = clocked.makespan.as_ps() as f64 / exact.makespan.as_ps() as f64;
        assert!((1.0..1.03).contains(&stretch), "stretch {stretch}");
    }

    #[test]
    fn empty_schedule_is_free() {
        let mut b = bank();
        let r = pair().execute(&mut b, &[]).unwrap();
        assert_eq!(r.ticks, 0);
        assert_eq!(r.makespan, Ps::ZERO);
    }

    #[test]
    fn rejects_zero_clock() {
        assert!(ClockedFsmPair::new(PcmTimings::paper_baseline(), 0).is_err());
    }
}
