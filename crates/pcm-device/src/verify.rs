//! Program-and-verify (P&V) with failure injection.
//!
//! Real PCM writes are not fire-and-forget: process variation means a
//! pulse occasionally fails to flip its cell, so chips pair the write
//! driver with "program-and-verification circuits" (the cost-sensitive
//! machinery §IV-D contrasts the Tetris logic against). This module wraps
//! [`CellBlock`] programming in a verify loop with an injectable per-bit
//! failure probability — both a realism knob and a fault-injection hook
//! for testing: every consumer invariant must hold even when pulses
//! misfire, because the verify loop hides the retries.

use crate::array::CellBlock;
use pcm_types::rng::Rng;
use pcm_types::{PcmError, PcmTimings, Ps};

/// P&V parameters.
#[derive(Clone, Copy, Debug)]
pub struct VerifyParams {
    /// Per-bit probability that a single pulse fails to flip its cell,
    /// in parts per million. 0 = ideal cells.
    pub failure_ppm: u32,
    /// Maximum pulse rounds before the write is declared stuck.
    pub max_rounds: u32,
    /// Verify-read time appended after each round.
    pub t_verify: Ps,
}

impl Default for VerifyParams {
    fn default() -> Self {
        VerifyParams {
            failure_ppm: 0,
            max_rounds: 8,
            t_verify: PcmTimings::paper_baseline().t_read,
        }
    }
}

/// Outcome of one verified row program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Pulse rounds performed (1 = first-shot success).
    pub rounds: u32,
    /// Pulses beyond the ideal single round.
    pub retry_pulses: u32,
    /// Total extra time spent on retries and verify reads.
    pub overhead: Ps,
}

/// Program `set_mask`/`reset_mask` into `row` of `block` with verify
/// retries; failed bits are re-pulsed until every target bit reads back
/// correctly or `max_rounds` is exhausted.
pub fn program_row_verified<R: Rng>(
    block: &mut CellBlock,
    row: usize,
    set_mask: u64,
    reset_mask: u64,
    timings: &PcmTimings,
    params: &VerifyParams,
    rng: &mut R,
) -> Result<VerifyReport, PcmError> {
    if set_mask & reset_mask != 0 {
        return Err(PcmError::config("SET and RESET masks overlap"));
    }
    let mut pending_set = set_mask;
    let mut pending_reset = reset_mask;
    let mut rounds = 0u32;
    let mut retry_pulses = 0u32;
    let mut overhead = Ps::ZERO;

    while pending_set != 0 || pending_reset != 0 {
        if rounds >= params.max_rounds {
            return Err(PcmError::IncompleteSchedule(format!(
                "row {row}: {} cells stuck after {} P&V rounds",
                (pending_set | pending_reset).count_ones(),
                rounds
            )));
        }
        rounds += 1;
        // Each pulsed bit lands independently; misfires stay pending.
        let landed_set = filter_failures(pending_set, params.failure_ppm, rng);
        let landed_reset = filter_failures(pending_reset, params.failure_ppm, rng);
        block.program_row(row, landed_set, landed_reset)?;
        if rounds > 1 {
            retry_pulses += (landed_set | landed_reset).count_ones();
            // Each retry round costs a full pulse window (SET-dominated
            // whenever any SET is still pending) plus its verify read.
            overhead += if pending_set != 0 {
                timings.t_set
            } else {
                timings.t_reset
            };
        }
        overhead += params.t_verify; // every round ends in a verify read
        pending_set &= !landed_set;
        pending_reset &= !landed_reset;
    }
    Ok(VerifyReport {
        rounds,
        retry_pulses,
        overhead,
    })
}

/// Drop each set bit of `mask` with probability `failure_ppm / 1e6`.
fn filter_failures<R: Rng>(mask: u64, failure_ppm: u32, rng: &mut R) -> u64 {
    if failure_ppm == 0 || mask == 0 {
        return mask;
    }
    let mut out = mask;
    let mut m = mask;
    while m != 0 {
        let low = m & m.wrapping_neg();
        m &= !low;
        if rng.gen_range(0..1_000_000) < failure_ppm {
            out &= !low;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::rng::StdRng;

    fn setup() -> (CellBlock, PcmTimings, StdRng) {
        (
            CellBlock::new(4, 64).unwrap(),
            PcmTimings::paper_baseline(),
            StdRng::seed_from_u64(7),
        )
    }

    #[test]
    fn ideal_cells_need_one_round() {
        let (mut block, t, mut rng) = setup();
        let params = VerifyParams::default();
        let r = program_row_verified(&mut block, 0, 0xFF, 0, &t, &params, &mut rng).unwrap();
        assert_eq!(r.rounds, 1);
        assert_eq!(r.retry_pulses, 0);
        assert_eq!(r.overhead, Ps::from_ns(50), "just the verify read");
        assert_eq!(block.read_row(0).unwrap(), 0xFF);
    }

    #[test]
    fn failures_retry_until_correct() {
        let (block, t, mut rng) = setup();
        // 20% per-bit failure: several rounds, but always correct at the end.
        let params = VerifyParams {
            failure_ppm: 200_000,
            max_rounds: 32,
            ..Default::default()
        };
        for trial in 0..50u64 {
            let set = 0xDEAD_BEEF_u64 ^ (trial << 32);
            let mut block2 = CellBlock::new(1, 64).unwrap();
            let r = program_row_verified(&mut block2, 0, set, 0, &t, &params, &mut rng).unwrap();
            assert_eq!(block2.read_row(0).unwrap(), set, "trial {trial}");
            assert!(r.rounds >= 1);
        }
        let _ = block;
    }

    #[test]
    fn hopeless_cells_error_out() {
        let (mut block, t, mut rng) = setup();
        // Certain failure: every round misfires everything.
        let params = VerifyParams {
            failure_ppm: 1_000_000,
            max_rounds: 4,
            ..Default::default()
        };
        let err = program_row_verified(&mut block, 0, 0b1, 0, &t, &params, &mut rng).unwrap_err();
        assert!(matches!(err, PcmError::IncompleteSchedule(_)));
    }

    #[test]
    fn retries_cost_time_and_wear() {
        let (_, t, mut rng) = setup();
        let params = VerifyParams {
            failure_ppm: 500_000,
            max_rounds: 64,
            ..Default::default()
        };
        let mut total_rounds = 0u32;
        for _ in 0..20 {
            let mut block = CellBlock::new(1, 64).unwrap();
            let r = program_row_verified(&mut block, 0, u64::MAX >> 32, 0, &t, &params, &mut rng)
                .unwrap();
            total_rounds += r.rounds;
            if r.rounds > 1 {
                assert!(r.overhead > params.t_verify);
            }
        }
        assert!(total_rounds > 40, "50% failure needs ~2 rounds on average");
    }

    #[test]
    fn overlapping_masks_rejected() {
        let (mut block, t, mut rng) = setup();
        assert!(program_row_verified(
            &mut block,
            0,
            0b11,
            0b01,
            &t,
            &VerifyParams::default(),
            &mut rng
        )
        .is_err());
    }
}
