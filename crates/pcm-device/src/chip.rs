//! The PCM chip datapath (Fig. 6b).
//!
//! An X16 chip contributes a 16-bit slice (plus one flip cell) of every
//! 64-bit data unit. The Tetris datapath extends the traditional one with:
//!
//! * an **X136 write buffer** (128 data bits + 8 flip bits — a full cache
//!   line's slice for this chip),
//! * **0/1 counters** that tally the SET/RESET demand of each data unit as
//!   the old data streams out of the sense amps,
//! * **Reg0 / Reg1** — two 48-bit registers holding, for each of the 8 data
//!   units, a 3-bit label and a (≤ 6-bit) count of pending write-0s /
//!   write-1s.
//!
//! Rows in this model are data-unit slots: row `r` holds this chip's 16-bit
//! slice of data unit `r`, plus the unit's flip cell in column 16.

use crate::array::CellBlock;
use crate::write_driver::{DriveOutputs, WriteDriver, WriteSignal};
use pcm_types::PcmError;

/// Data bits per chip slice (X16).
pub const CHIP_DATA_BITS: u32 = 16;
/// Slice width including the flip cell.
pub const CHIP_SLICE_BITS: u32 = CHIP_DATA_BITS + 1;
/// Mask of the data bits within a slice word.
pub const DATA_MASK: u64 = (1 << CHIP_DATA_BITS) - 1;
/// Bit position of the flip cell within a slice word.
pub const FLIP_BIT: u64 = 1 << CHIP_DATA_BITS;

/// One data unit's slice as read from the array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceRead {
    /// The 16 stored data bits.
    pub data: u16,
    /// The stored flip tag.
    pub flip: bool,
}

/// Analysis registers: per-data-unit label and pending-write count.
///
/// The real hardware packs 8 × 6 bits into one 48-bit register; we keep the
/// fields separate but assert the same width limits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisReg {
    labels: [u8; 8],
    counts: [u8; 8],
    len: usize,
}

impl AnalysisReg {
    /// Load label/count pairs (≤ 8 entries; labels ≤ 7, counts ≤ 63 to fit
    /// the 48-bit register budget the paper sizes).
    pub fn load(&mut self, entries: &[(u8, u8)]) -> Result<(), PcmError> {
        if entries.len() > 8 {
            return Err(PcmError::config("Reg holds at most 8 data units"));
        }
        for &(label, count) in entries {
            if label > 7 {
                return Err(PcmError::config("unit label exceeds 3 bits"));
            }
            if count > 63 {
                return Err(PcmError::config("count exceeds 6 bits"));
            }
        }
        self.labels = [0; 8];
        self.counts = [0; 8];
        for (i, &(label, count)) in entries.iter().enumerate() {
            self.labels[i] = label;
            self.counts[i] = count;
        }
        self.len = entries.len();
        Ok(())
    }

    /// Entry `i` as (label, count).
    pub fn entry(&self, i: usize) -> Option<(u8, u8)> {
        (i < self.len).then(|| (self.labels[i], self.counts[i]))
    }

    /// Number of loaded entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are loaded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One PCM chip: cell blocks behind GYDEC/S/A/DOUT, the Tetris write logic
/// registers, and the write driver.
#[derive(Clone, Debug)]
pub struct PcmChip {
    blocks: Vec<CellBlock>,
    rows_per_block: usize,
    driver: WriteDriver,
    /// Reg0: pending write-0 labels/counts.
    pub reg0: AnalysisReg,
    /// Reg1: pending write-1 labels/counts.
    pub reg1: AnalysisReg,
}

impl PcmChip {
    /// A chip of `blocks` cell blocks × `rows_per_block` data-unit rows.
    pub fn new(blocks: usize, rows_per_block: usize) -> Result<Self, PcmError> {
        if blocks == 0 {
            return Err(PcmError::config("chip needs at least one cell block"));
        }
        let mut bs = Vec::with_capacity(blocks);
        for _ in 0..blocks {
            bs.push(CellBlock::new(rows_per_block, CHIP_SLICE_BITS as usize)?);
        }
        Ok(PcmChip {
            blocks: bs,
            rows_per_block,
            driver: WriteDriver::new(CHIP_SLICE_BITS),
            reg0: AnalysisReg::default(),
            reg1: AnalysisReg::default(),
        })
    }

    /// Total data-unit rows.
    pub fn rows(&self) -> usize {
        self.blocks.len() * self.rows_per_block
    }

    fn locate(&self, row: usize) -> Result<(usize, usize), PcmError> {
        if row >= self.rows() {
            return Err(PcmError::config(format!("chip row {row} out of range")));
        }
        Ok((row / self.rows_per_block, row % self.rows_per_block))
    }

    /// Read one slice through GYDEC → S/A → DOUT (synchronous burst path).
    pub fn read_slice(&self, row: usize) -> Result<SliceRead, PcmError> {
        let (b, r) = self.locate(row)?;
        let word = self.blocks[b].read_row(r)?;
        Ok(SliceRead {
            data: (word & DATA_MASK) as u16,
            flip: word & FLIP_BIT != 0,
        })
    }

    /// Burst-read `count` consecutive slices (the 8-word prefetch domain).
    pub fn burst_read(&self, start_row: usize, count: usize) -> Result<Vec<SliceRead>, PcmError> {
        (start_row..start_row + count)
            .map(|r| self.read_slice(r))
            .collect()
    }

    /// The 0/1 counter component: SET/RESET demand of writing `new` over
    /// the currently stored slice (flip cell included).
    pub fn count_zeros_ones(
        &self,
        row: usize,
        new_data: u16,
        new_flip: bool,
    ) -> Result<(u32, u32), PcmError> {
        let old = self.read_slice(row)?;
        let old_w = old.data as u64 | if old.flip { FLIP_BIT } else { 0 };
        let new_w = new_data as u64 | if new_flip { FLIP_BIT } else { 0 };
        let t = pcm_types::transitions(old_w, new_w);
        Ok((t.num_sets(), t.num_resets()))
    }

    /// Drive one programming tick: the write driver compares the stored
    /// slice with `(new_data, new_flip)` and pulses only the bits selected
    /// by `signal`. Returns the asserted enables (for current accounting).
    ///
    /// `new_flip = None` leaves the flip cell untouched — used by the chips
    /// of a bank that do not own the unit's flip tag.
    pub fn drive_slice(
        &mut self,
        row: usize,
        new_data: u16,
        new_flip: Option<bool>,
        signal: WriteSignal,
    ) -> Result<DriveOutputs, PcmError> {
        let old = self.read_slice(row)?;
        let old_w = old.data as u64 | if old.flip { FLIP_BIT } else { 0 };
        let new_flip = new_flip.unwrap_or(old.flip);
        let new_w = new_data as u64 | if new_flip { FLIP_BIT } else { 0 };
        let out = self.driver.drive(old_w, new_w, signal);
        let (b, r) = self.locate(row)?;
        self.blocks[b].program_row(r, out.set_enable, out.reset_enable)?;
        Ok(out)
    }

    /// Maximum cell wear across the chip.
    pub fn max_wear(&self) -> u32 {
        self.blocks.iter().map(|b| b.max_wear()).max().unwrap_or(0)
    }

    /// Total programming pulses absorbed by the chip.
    pub fn total_wear(&self) -> u64 {
        self.blocks.iter().map(|b| b.total_wear()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> PcmChip {
        PcmChip::new(4, 8).unwrap()
    }

    #[test]
    fn geometry() {
        let c = chip();
        assert_eq!(c.rows(), 32);
        assert!(c.read_slice(31).is_ok());
        assert!(c.read_slice(32).is_err());
    }

    #[test]
    fn two_phase_write_realizes_data() {
        let mut c = chip();
        // Phase 1 (FSM1): SETs; phase 0 (FSM0): RESETs.
        c.drive_slice(3, 0xBEEF, Some(true), WriteSignal::One)
            .unwrap();
        c.drive_slice(3, 0xBEEF, Some(true), WriteSignal::Zero)
            .unwrap();
        let s = c.read_slice(3).unwrap();
        assert_eq!(s.data, 0xBEEF);
        assert!(s.flip);
        // Overwrite with different data.
        c.drive_slice(3, 0x1234, Some(false), WriteSignal::One)
            .unwrap();
        c.drive_slice(3, 0x1234, Some(false), WriteSignal::Zero)
            .unwrap();
        let s = c.read_slice(3).unwrap();
        assert_eq!(s.data, 0x1234);
        assert!(!s.flip);
    }

    #[test]
    fn counters_match_transitions() {
        let mut c = chip();
        c.drive_slice(0, 0x00FF, Some(false), WriteSignal::One)
            .unwrap();
        let (sets, resets) = c.count_zeros_ones(0, 0x0F0F, false).unwrap();
        // 0x00FF → 0x0F0F: bits 8–11 set (4 SETs), bits 4–7 reset (4 RESETs).
        assert_eq!(sets, 4);
        assert_eq!(resets, 4);
    }

    #[test]
    fn counters_include_flip_cell() {
        let c = chip();
        let (sets, resets) = c.count_zeros_ones(0, 0, true).unwrap();
        assert_eq!((sets, resets), (1, 0), "flip cell 0→1 is one SET");
    }

    #[test]
    fn burst_read_prefetches_a_line_slice() {
        let mut c = chip();
        for row in 0..8 {
            c.drive_slice(row, row as u16, Some(false), WriteSignal::One)
                .unwrap();
        }
        let slices = c.burst_read(0, 8).unwrap();
        assert_eq!(slices.len(), 8);
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.data, i as u16);
        }
    }

    #[test]
    fn wear_accumulates_only_on_changed_bits() {
        let mut c = chip();
        c.drive_slice(0, 0b1, Some(false), WriteSignal::One)
            .unwrap();
        c.drive_slice(0, 0b1, Some(false), WriteSignal::One)
            .unwrap(); // no-op
        assert_eq!(c.total_wear(), 1);
    }

    #[test]
    fn analysis_registers_enforce_widths() {
        let mut c = chip();
        assert!(c.reg1.load(&[(0, 8), (1, 7), (7, 63)]).is_ok());
        assert_eq!(c.reg1.len(), 3);
        assert_eq!(c.reg1.entry(0), Some((0, 8)));
        assert_eq!(c.reg1.entry(3), None);
        assert!(c.reg0.load(&[(8, 0)]).is_err(), "label exceeds 3 bits");
        assert!(c.reg0.load(&[(0, 64)]).is_err(), "count exceeds 6 bits");
        assert!(c.reg0.load(&[(0, 0); 9]).is_err(), "more than 8 units");
    }
}
