//! A single SLC PCM cell.
//!
//! The cell is a slab of Ge₂Sb₂Te₅ between a heater and two electrodes.
//! Its phase determines resistance: amorphous is ~10⁴–10⁶× more resistive
//! than crystalline, which is what the sense amplifier discriminates. We
//! model logical state, programming via pulses, and wear (each RESET/SET
//! cycle degrades the GST; SLC endurance is ~10⁸ writes).

use crate::pulse::{Pulse, PulseKind};

/// Phase state of the GST material.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellState {
    /// Amorphous (high resistance) — logical '0'.
    Amorphous,
    /// Crystalline (low resistance) — logical '1'.
    Crystalline,
}

impl CellState {
    /// Logical bit value stored by this state.
    pub const fn bit(self) -> bool {
        matches!(self, CellState::Crystalline)
    }

    /// State that stores the given bit.
    pub const fn from_bit(bit: bool) -> Self {
        if bit {
            CellState::Crystalline
        } else {
            CellState::Amorphous
        }
    }
}

/// Representative resistance levels (Ω) used by the sense model; the exact
/// values only need the orders-of-magnitude contrast the paper describes.
pub const R_AMORPHOUS_OHM: u64 = 1_000_000;
/// Crystalline (SET) resistance level.
pub const R_CRYSTALLINE_OHM: u64 = 10_000;

/// One PCM cell: phase state plus accumulated programming wear.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PcmCell {
    state: CellState,
    writes: u64,
}

impl Default for PcmCell {
    /// Cells come up amorphous ('0') after manufacture.
    fn default() -> Self {
        PcmCell {
            state: CellState::Amorphous,
            writes: 0,
        }
    }
}

impl PcmCell {
    /// A cell initialized to store `bit` with zero wear.
    pub const fn new(bit: bool) -> Self {
        PcmCell {
            state: CellState::from_bit(bit),
            writes: 0,
        }
    }

    /// Current phase state.
    pub const fn state(&self) -> CellState {
        self.state
    }

    /// Number of programming pulses this cell has absorbed.
    pub const fn wear(&self) -> u64 {
        self.writes
    }

    /// Apply a programming/read pulse.
    ///
    /// Returns the sensed bit for a READ pulse, `None` otherwise. A
    /// programming pulse always increments wear, even when the cell was
    /// already in the target state — avoiding such redundant pulses is
    /// exactly what DCW-style differential writes are for.
    pub fn apply(&mut self, pulse: Pulse) -> Option<bool> {
        match pulse.kind {
            PulseKind::Set => {
                self.state = CellState::Crystalline;
                self.writes += 1;
                None
            }
            PulseKind::Reset => {
                self.state = CellState::Amorphous;
                self.writes += 1;
                None
            }
            PulseKind::Read => Some(self.read()),
        }
    }

    /// Non-destructive read: sense the resistance level and threshold it.
    pub const fn read(&self) -> bool {
        self.resistance_ohm() < (R_AMORPHOUS_OHM + R_CRYSTALLINE_OHM) / 2
    }

    /// Resistance presented to the sense amplifier.
    pub const fn resistance_ohm(&self) -> u64 {
        match self.state {
            CellState::Amorphous => R_AMORPHOUS_OHM,
            CellState::Crystalline => R_CRYSTALLINE_OHM,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::PulseLibrary;

    #[test]
    fn fresh_cell_reads_zero() {
        let c = PcmCell::default();
        assert!(!c.read());
        assert_eq!(c.wear(), 0);
    }

    #[test]
    fn set_then_reset_roundtrip() {
        let lib = PulseLibrary::paper_baseline();
        let mut c = PcmCell::default();
        c.apply(lib.set);
        assert!(c.read(), "SET stores '1'");
        assert_eq!(c.state(), CellState::Crystalline);
        c.apply(lib.reset);
        assert!(!c.read(), "RESET stores '0'");
        assert_eq!(c.state(), CellState::Amorphous);
        assert_eq!(c.wear(), 2);
    }

    #[test]
    fn read_does_not_wear_or_disturb() {
        let lib = PulseLibrary::paper_baseline();
        let mut c = PcmCell::new(true);
        for _ in 0..1000 {
            assert_eq!(c.apply(lib.read), Some(true));
        }
        assert_eq!(c.wear(), 0);
        assert_eq!(c.state(), CellState::Crystalline);
    }

    #[test]
    fn redundant_program_still_wears() {
        let lib = PulseLibrary::paper_baseline();
        let mut c = PcmCell::new(true);
        c.apply(lib.set);
        assert_eq!(c.wear(), 1, "non-differential writes waste endurance");
    }

    #[test]
    fn resistance_contrast_is_orders_of_magnitude() {
        let zero = PcmCell::new(false);
        let one = PcmCell::new(true);
        assert!(zero.resistance_ohm() >= 100 * one.resistance_ohm());
    }

    #[test]
    fn state_bit_mapping() {
        assert!(CellState::Crystalline.bit());
        assert!(!CellState::Amorphous.bit());
        assert_eq!(CellState::from_bit(true), CellState::Crystalline);
        assert_eq!(CellState::from_bit(false), CellState::Amorphous);
    }
}
