//! Multi-level-cell (MLC) PCM groundwork.
//!
//! The paper studies SLC "for its better write performance" (§II), but the
//! GCP power-budgeting substrate it adopts comes from MLC work (FPB,
//! ref. \[16\]), so an MLC cell model belongs in the device library. A
//! 2-bit MLC cell distinguishes four resistance bands and is programmed by
//! **program-and-verify (P&V)**: apply a partial pulse, read back, repeat
//! until the target band is hit — which multiplies write latency and is
//! exactly why MLC write scheduling gets even more budget-constrained than
//! the SLC case the paper optimizes.

use pcm_types::{PcmError, PcmTimings, Ps};

/// Resistance bands of a 2-bit MLC cell, from fully crystalline (`L3`,
/// lowest resistance, bits `11`) to fully amorphous (`L0`, bits `00`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MlcLevel {
    /// Fully amorphous — stores `00`.
    L0,
    /// Mostly amorphous — stores `01`.
    L1,
    /// Mostly crystalline — stores `10`.
    L2,
    /// Fully crystalline — stores `11`.
    L3,
}

impl MlcLevel {
    /// The two bits stored at this level.
    pub const fn bits(self) -> u8 {
        match self {
            MlcLevel::L0 => 0b00,
            MlcLevel::L1 => 0b01,
            MlcLevel::L2 => 0b10,
            MlcLevel::L3 => 0b11,
        }
    }

    /// Level that stores the given two bits.
    pub const fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => MlcLevel::L0,
            0b01 => MlcLevel::L1,
            0b10 => MlcLevel::L2,
            _ => MlcLevel::L3,
        }
    }

    /// Nominal resistance band midpoint (Ω). Bands are log-spaced across
    /// the amorphous/crystalline contrast.
    pub const fn resistance_ohm(self) -> u64 {
        match self {
            MlcLevel::L0 => 1_000_000,
            MlcLevel::L1 => 200_000,
            MlcLevel::L2 => 50_000,
            MlcLevel::L3 => 10_000,
        }
    }

    fn index(self) -> i8 {
        match self {
            MlcLevel::L0 => 0,
            MlcLevel::L1 => 1,
            MlcLevel::L2 => 2,
            MlcLevel::L3 => 3,
        }
    }
}

/// P&V programming parameters.
#[derive(Clone, Copy, Debug)]
pub struct MlcProgramParams {
    /// Duration of one partial-SET iteration.
    pub t_partial_set: Ps,
    /// Duration of the verify read after each iteration.
    pub t_verify: Ps,
    /// Duration of the initial RESET that precedes staircase programming.
    pub t_reset: Ps,
    /// Iterations needed to move up one level (deterministic model).
    pub iterations_per_level: u32,
}

impl Default for MlcProgramParams {
    fn default() -> Self {
        // Representative MLC PCM numbers: partial SETs are short anneals,
        // each followed by a verify read; 2 iterations per band.
        let slc = PcmTimings::paper_baseline();
        MlcProgramParams {
            t_partial_set: Ps::from_ns(100),
            t_verify: slc.t_read,
            t_reset: slc.t_reset,
            iterations_per_level: 2,
        }
    }
}

/// Outcome of programming one MLC cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MlcProgramReport {
    /// P&V iterations performed (0 when the cell already held the target).
    pub iterations: u32,
    /// Whether an initial RESET was required (target below current level).
    pub reset_first: bool,
    /// Total programming time.
    pub time: Ps,
}

/// A 2-bit MLC cell programmed by RESET-then-staircase-SET P&V.
#[derive(Clone, Copy, Debug)]
pub struct MlcCell {
    level: MlcLevel,
    wear: u64,
}

impl Default for MlcCell {
    fn default() -> Self {
        MlcCell {
            level: MlcLevel::L0,
            wear: 0,
        }
    }
}

impl MlcCell {
    /// Current level.
    pub const fn level(&self) -> MlcLevel {
        self.level
    }

    /// Read the stored bits (non-destructive resistance sensing).
    pub const fn read(&self) -> u8 {
        self.level.bits()
    }

    /// Programming pulses absorbed.
    pub const fn wear(&self) -> u64 {
        self.wear
    }

    /// Program the cell to `target` with P&V.
    ///
    /// Moving *up* (toward crystalline) uses partial SETs directly; moving
    /// *down* requires a full RESET to `L0` first, then the staircase back
    /// up — the MLC analogue of the SLC RESET/SET asymmetry.
    pub fn program(&mut self, target: MlcLevel, p: &MlcProgramParams) -> MlcProgramReport {
        if target == self.level {
            return MlcProgramReport {
                iterations: 0,
                reset_first: false,
                time: Ps::ZERO,
            };
        }
        let mut time = Ps::ZERO;
        let mut reset_first = false;
        if target < self.level {
            // Quench to amorphous, then climb.
            self.level = MlcLevel::L0;
            self.wear += 1;
            time += p.t_reset;
            reset_first = true;
        }
        let steps = (target.index() - self.level.index()) as u32;
        let iterations = steps * p.iterations_per_level;
        for _ in 0..iterations {
            time += p.t_partial_set + p.t_verify;
            self.wear += 1;
        }
        self.level = target;
        MlcProgramReport {
            iterations,
            reset_first,
            time,
        }
    }
}

/// Worst-case MLC cell-write time under the default parameters; compare
/// with the SLC `Tset` to see why the paper sticks to SLC.
pub fn mlc_worst_case_write(p: &MlcProgramParams) -> Ps {
    // RESET + climb L0 → L3.
    p.t_reset + (p.t_partial_set + p.t_verify) * (3 * p.iterations_per_level) as u64
}

/// Validate MLC parameters.
pub fn validate_params(p: &MlcProgramParams) -> Result<(), PcmError> {
    if p.iterations_per_level == 0 {
        return Err(PcmError::config(
            "P&V needs at least one iteration per level",
        ));
    }
    if p.t_partial_set == Ps::ZERO || p.t_verify == Ps::ZERO {
        return Err(PcmError::config("P&V pulse and verify must take time"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::PcmTimings;

    #[test]
    fn levels_roundtrip_bits() {
        for bits in 0..4u8 {
            assert_eq!(MlcLevel::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    fn resistance_bands_are_ordered() {
        assert!(MlcLevel::L0.resistance_ohm() > MlcLevel::L1.resistance_ohm());
        assert!(MlcLevel::L1.resistance_ohm() > MlcLevel::L2.resistance_ohm());
        assert!(MlcLevel::L2.resistance_ohm() > MlcLevel::L3.resistance_ohm());
    }

    #[test]
    fn climbing_needs_no_reset() {
        let p = MlcProgramParams::default();
        let mut c = MlcCell::default();
        let r = c.program(MlcLevel::L2, &p);
        assert!(!r.reset_first);
        assert_eq!(r.iterations, 4, "two levels × two iterations");
        assert_eq!(c.read(), 0b10);
        assert_eq!(r.time, Ps::from_ns(4 * 150));
    }

    #[test]
    fn descending_resets_first() {
        let p = MlcProgramParams::default();
        let mut c = MlcCell::default();
        c.program(MlcLevel::L3, &p);
        let r = c.program(MlcLevel::L1, &p);
        assert!(r.reset_first);
        assert_eq!(r.iterations, 2, "climb L0 → L1");
        assert_eq!(c.level(), MlcLevel::L1);
    }

    #[test]
    fn idempotent_program_is_free() {
        let p = MlcProgramParams::default();
        let mut c = MlcCell::default();
        c.program(MlcLevel::L1, &p);
        let wear = c.wear();
        let r = c.program(MlcLevel::L1, &p);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.time, Ps::ZERO);
        assert_eq!(c.wear(), wear);
    }

    #[test]
    fn mlc_writes_are_slower_than_slc() {
        let p = MlcProgramParams::default();
        let slc = PcmTimings::paper_baseline();
        assert!(
            mlc_worst_case_write(&p) > slc.t_set,
            "MLC P&V ({}) must exceed the SLC SET ({}) — the paper's reason \
             for studying SLC",
            mlc_worst_case_write(&p),
            slc.t_set
        );
    }

    #[test]
    fn wear_counts_every_pulse() {
        let p = MlcProgramParams::default();
        let mut c = MlcCell::default();
        c.program(MlcLevel::L3, &p); // 6 partial sets
        c.program(MlcLevel::L0, &p); // 1 reset
        assert_eq!(c.wear(), 7);
    }

    #[test]
    fn params_validation() {
        assert!(validate_params(&MlcProgramParams::default()).is_ok());
        let bad = MlcProgramParams {
            iterations_per_level: 0,
            ..Default::default()
        };
        assert!(validate_params(&bad).is_err());
        let bad = MlcProgramParams {
            t_verify: Ps::ZERO,
            ..Default::default()
        };
        assert!(validate_params(&bad).is_err());
    }
}
