//! A memory bank: four X16 chips behind one 64-bit datapath (Fig. 2).
//!
//! Row `r` of the bank is data unit `r`: chip `j` stores bits
//! `[16j, 16j+16)` of the unit plus a replica of the unit's flip tag (each
//! chip's datapath carries its own flip cell, Fig. 6).

use crate::charge_pump::GlobalChargePump;
use crate::chip::{PcmChip, SliceRead, CHIP_DATA_BITS};
use crate::write_driver::{DriveOutputs, WriteSignal};
use pcm_types::{PcmError, PowerParams};

/// A bank of PCM chips.
#[derive(Clone, Debug)]
pub struct PcmBank {
    chips: Vec<PcmChip>,
    power: PowerParams,
    gcp_enabled: bool,
}

/// The per-chip drive outputs of one bank-level programming tick.
#[derive(Clone, Debug)]
pub struct BankDrive {
    /// One entry per chip.
    pub per_chip: Vec<DriveOutputs>,
}

impl BankDrive {
    /// Bank-level instantaneous current in SET-equivalents.
    pub fn total_current(&self, l_ratio: u32) -> u32 {
        self.per_chip.iter().map(|d| d.current(l_ratio)).sum()
    }

    /// Highest per-chip current (binding constraint without GCP).
    pub fn max_chip_current(&self, l_ratio: u32) -> u32 {
        self.per_chip
            .iter()
            .map(|d| d.current(l_ratio))
            .max()
            .unwrap_or(0)
    }
}

impl PcmBank {
    /// A bank of `power.chips_per_bank` chips, each with `blocks` cell
    /// blocks of `rows_per_block` data-unit rows.
    pub fn new(
        blocks: usize,
        rows_per_block: usize,
        power: PowerParams,
        gcp_enabled: bool,
    ) -> Result<Self, PcmError> {
        power.validate()?;
        let mut chips = Vec::with_capacity(power.chips_per_bank as usize);
        for _ in 0..power.chips_per_bank {
            chips.push(PcmChip::new(blocks, rows_per_block)?);
        }
        Ok(PcmBank {
            chips,
            power,
            gcp_enabled,
        })
    }

    /// Number of data-unit rows.
    pub fn rows(&self) -> usize {
        self.chips[0].rows()
    }

    /// Number of chips.
    pub fn num_chips(&self) -> usize {
        self.chips.len()
    }

    /// The bank's power parameters.
    pub fn power(&self) -> &PowerParams {
        &self.power
    }

    /// Whether GCP current stealing is enabled.
    pub fn gcp_enabled(&self) -> bool {
        self.gcp_enabled
    }

    /// A fresh pump matching this bank's configuration.
    pub fn make_pump(&self) -> GlobalChargePump {
        GlobalChargePump::new(
            self.chips.len(),
            self.power.budget_per_chip(),
            self.gcp_enabled,
        )
    }

    /// Read data unit `row`: 64 assembled data bits plus the flip tag
    /// (owned by chip 0; the other chips' 17th column is unused).
    pub fn read_unit(&self, row: usize) -> Result<(u64, bool), PcmError> {
        let mut data = 0u64;
        let mut flip = false;
        for (j, chip) in self.chips.iter().enumerate() {
            let SliceRead { data: d, flip: f } = chip.read_slice(row)?;
            data |= (d as u64) << (j as u32 * CHIP_DATA_BITS);
            if j == 0 {
                flip = f;
            }
        }
        Ok((data, flip))
    }

    /// Drive one programming tick of data unit `row` toward
    /// `(new_data, new_flip)` with polarity `signal`, across all chips.
    /// Only chip 0 drives the flip cell.
    pub fn drive_unit(
        &mut self,
        row: usize,
        new_data: u64,
        new_flip: bool,
        signal: WriteSignal,
    ) -> Result<BankDrive, PcmError> {
        let mut per_chip = Vec::with_capacity(self.chips.len());
        for (j, chip) in self.chips.iter_mut().enumerate() {
            let slice = (new_data >> (j as u32 * CHIP_DATA_BITS)) as u16;
            let flip = (j == 0).then_some(new_flip);
            per_chip.push(chip.drive_slice(row, slice, flip, signal)?);
        }
        Ok(BankDrive { per_chip })
    }

    /// Immediately write a unit (both phases back to back); used to
    /// initialize array contents in tests and examples.
    pub fn write_unit_immediate(
        &mut self,
        row: usize,
        data: u64,
        flip: bool,
    ) -> Result<(), PcmError> {
        self.drive_unit(row, data, flip, WriteSignal::One)?;
        self.drive_unit(row, data, flip, WriteSignal::Zero)?;
        Ok(())
    }

    /// Maximum cell wear across the bank.
    pub fn max_wear(&self) -> u32 {
        self.chips.iter().map(|c| c.max_wear()).max().unwrap_or(0)
    }

    /// Total programming pulses absorbed by the bank.
    pub fn total_wear(&self) -> u64 {
        self.chips.iter().map(|c| c.total_wear()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> PcmBank {
        PcmBank::new(1, 8, PowerParams::paper_baseline(), true).unwrap()
    }

    #[test]
    fn unit_spans_four_chips() {
        let mut b = bank();
        let v = 0xDEAD_BEEF_CAFE_F00Du64;
        b.write_unit_immediate(5, v, true).unwrap();
        assert_eq!(b.read_unit(5).unwrap(), (v, true));
    }

    #[test]
    fn drive_current_reflects_changed_bits_per_chip() {
        let mut b = bank();
        // 3 SET bits in chip 0's slice, 1 in chip 3's.
        let v = 0b0111u64 | 1u64 << 63;
        let d = b.drive_unit(0, v, false, WriteSignal::One).unwrap();
        assert_eq!(d.per_chip[0].current(2), 3);
        assert_eq!(d.per_chip[1].current(2), 0);
        assert_eq!(d.per_chip[3].current(2), 1);
        assert_eq!(d.total_current(2), 4);
        assert_eq!(d.max_chip_current(2), 3);
    }

    #[test]
    fn reset_current_weighted_by_l() {
        let mut b = bank();
        b.write_unit_immediate(0, u64::MAX, false).unwrap();
        let d = b.drive_unit(0, 0, false, WriteSignal::Zero).unwrap();
        // 64 RESETs × L=2 = 128 SET-equivalents bank-wide.
        assert_eq!(d.total_current(2), 128);
    }

    #[test]
    fn pump_matches_power_config() {
        let b = bank();
        let pump = b.make_pump();
        assert_eq!(pump.bank_budget(), 128);
    }

    #[test]
    fn immediate_write_is_differential() {
        let mut b = bank();
        b.write_unit_immediate(0, 0xF, false).unwrap();
        let wear_after_first = b.total_wear();
        assert_eq!(wear_after_first, 4);
        b.write_unit_immediate(0, 0xF, false).unwrap();
        assert_eq!(b.total_wear(), wear_after_first, "no redundant pulses");
    }
}
