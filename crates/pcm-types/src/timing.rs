//! PCM pulse timings and the SET/RESET time asymmetry.

use crate::time::Ps;

/// Programming/read pulse durations of the PCM array.
///
/// Defaults follow Table II of the paper (taken from the Samsung 90 nm
/// PRAM prototype): READ 50 ns, RESET 53 ns, SET 430 ns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PcmTimings {
    /// Array read latency (sense a row of cells).
    pub t_read: Ps,
    /// RESET pulse: quench GST to the amorphous (high-resistance, '0') state.
    pub t_reset: Ps,
    /// SET pulse: anneal GST to the crystalline (low-resistance, '1') state.
    pub t_set: Ps,
}

impl Default for PcmTimings {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl PcmTimings {
    /// Table II values: READ 50 ns, RESET 53 ns, SET 430 ns.
    pub const fn paper_baseline() -> Self {
        PcmTimings {
            t_read: Ps::from_ns(50),
            t_reset: Ps::from_ns(53),
            t_set: Ps::from_ns(430),
        }
    }

    /// The time-asymmetry ratio `K = floor(Tset / Treset)`.
    ///
    /// The paper quotes "Tset is about 8 times longer than Treset"; with the
    /// Table II values `430 / 53 = 8.11… → 8`. `K` is the number of
    /// sub-write-units a write unit is divided into for fine-grained
    /// write-0 scheduling (Fig. 5).
    pub const fn k_ratio(&self) -> u64 {
        self.t_set.as_ps() / self.t_reset.as_ps()
    }

    /// Duration of one sub-write-unit slot (`Tset / K`).
    ///
    /// Slightly longer than `Treset` when `K` does not divide exactly, so a
    /// RESET pulse always fits inside one slot.
    pub const fn sub_unit_duration(&self) -> Ps {
        Ps(self.t_set.as_ps() / self.k_ratio())
    }

    /// Sanity check: all pulses non-zero and SET is the longest.
    pub fn validate(&self) -> Result<(), crate::PcmError> {
        if self.t_read.as_ps() == 0 || self.t_reset.as_ps() == 0 || self.t_set.as_ps() == 0 {
            return Err(crate::PcmError::config(
                "all pulse timings must be non-zero",
            ));
        }
        if self.t_set < self.t_reset {
            return Err(crate::PcmError::config(
                "SET must not be faster than RESET (PCM time asymmetry)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_k_is_8() {
        let t = PcmTimings::paper_baseline();
        assert_eq!(t.k_ratio(), 8);
    }

    #[test]
    fn sub_unit_covers_reset() {
        let t = PcmTimings::paper_baseline();
        // 430/8 = 53.75 ns ≥ 53 ns, so one RESET fits in one sub-slot.
        assert!(t.sub_unit_duration() >= t.t_reset);
        // K sub-slots exactly tile one write unit (up to integer division).
        assert!(t.sub_unit_duration() * t.k_ratio() <= t.t_set);
    }

    #[test]
    fn validate_rejects_inverted_asymmetry() {
        let bad = PcmTimings {
            t_read: Ps::from_ns(50),
            t_reset: Ps::from_ns(430),
            t_set: Ps::from_ns(53),
        };
        assert!(bad.validate().is_err());
        assert!(PcmTimings::paper_baseline().validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero() {
        let bad = PcmTimings {
            t_read: Ps::ZERO,
            ..PcmTimings::paper_baseline()
        };
        assert!(bad.validate().is_err());
    }
}
