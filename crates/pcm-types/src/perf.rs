//! Machine-readable performance snapshots (`BENCH_<n>.json`).
//!
//! The bench harness in `pcm-bench` reports **median ± MAD** per benchmark;
//! this module is the schema those numbers are persisted in so a perf
//! trajectory survives across PRs. One snapshot = one committed JSON file
//! at the repo root (`BENCH_6.json`, `BENCH_7.json`, …), produced by the
//! canonical suite (`pcm-bench snapshot`) and diffed by the
//! `tetris-experiments bench-compare` subcommand.
//!
//! Design constraints:
//!
//! * **Self-describing** — run metadata (git revision, cargo profile,
//!   thread count, scheme/rank configuration, quick mode) rides along so a
//!   reviewer can tell whether two snapshots are comparable. Metadata is
//!   informational: `bench-compare` reports mismatches but gates only on
//!   the numbers.
//! * **Noise-aware gating** — [`GatePolicy`] flags a regression only beyond
//!   `max(tolerance% · base, k · MAD)`, so noisy micro-benches don't
//!   false-positive while a genuine slowdown on a stable bench still
//!   trips. A MAD of 0 (constant series) falls back to the relative
//!   tolerance alone — there is no division anywhere, so a zero MAD can
//!   never poison the gate.
//! * **Byte-stable round trips** — everything encodes through
//!   [`crate::json`], whose `f64` rendering is shortest-round-trip, so
//!   `parse(render(s)) == s` bit-for-bit (asserted by `propcheck!` below).

use crate::error::PcmError;
use crate::json::{field_error, Json, JsonCodec, JsonError};

/// What one benchmark iteration processes (for derived throughput).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThroughputUnit {
    /// Logical elements per iteration.
    Elements,
    /// Bytes per iteration.
    Bytes,
}

impl ThroughputUnit {
    /// Stable lowercase tag used in JSON.
    pub const fn tag(&self) -> &'static str {
        match self {
            ThroughputUnit::Elements => "elements",
            ThroughputUnit::Bytes => "bytes",
        }
    }

    /// Parse a tag written by [`ThroughputUnit::tag`].
    pub fn parse(tag: &str) -> Option<Self> {
        match tag {
            "elements" => Some(ThroughputUnit::Elements),
            "bytes" => Some(ThroughputUnit::Bytes),
            _ => None,
        }
    }
}

/// Throughput annotation of one benchmark: how much work one iteration
/// performs. The rate itself is derived (work / median), never stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchThroughput {
    /// Unit of `per_iter`.
    pub unit: ThroughputUnit,
    /// Work items processed per iteration.
    pub per_iter: u64,
}

impl JsonCodec for BenchThroughput {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("unit", Json::str(self.unit.tag())),
            ("per_iter", Json::UInt(self.per_iter)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let unit = v
            .get("unit")
            .and_then(Json::as_str)
            .and_then(ThroughputUnit::parse)
            .ok_or_else(|| field_error("unit"))?;
        let per_iter = v
            .get("per_iter")
            .and_then(Json::as_u64)
            .ok_or_else(|| field_error("per_iter"))?;
        Ok(BenchThroughput { unit, per_iter })
    }
}

/// One benchmark's robust statistics, as recorded by the harness.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Full benchmark id (`group/name`), unique within a snapshot.
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the per-iteration time, ns.
    pub mad_ns: f64,
    /// Samples taken (each sample is one timed batch).
    pub samples: u64,
    /// Iterations per sample batch.
    pub iters_per_sample: u64,
    /// Work per iteration, when the bench declared a throughput.
    pub throughput: Option<BenchThroughput>,
}

impl BenchRecord {
    /// Derived throughput rate (work items per second), when annotated.
    pub fn throughput_per_sec(&self) -> Option<f64> {
        let t = self.throughput.as_ref()?;
        if self.median_ns > 0.0 {
            Some(t.per_iter as f64 / (self.median_ns * 1e-9))
        } else {
            None
        }
    }
}

impl JsonCodec for BenchRecord {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::str(self.id.clone())),
            ("median_ns", Json::Num(self.median_ns)),
            ("mad_ns", Json::Num(self.mad_ns)),
            ("samples", Json::UInt(self.samples)),
            ("iters_per_sample", Json::UInt(self.iters_per_sample)),
        ];
        if let Some(t) = &self.throughput {
            pairs.push(("throughput", t.to_json()));
        }
        Json::obj(pairs)
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let id = v
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| field_error("id"))?
            .to_string();
        let median_ns = v
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| field_error("median_ns"))?;
        let mad_ns = v
            .get("mad_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| field_error("mad_ns"))?;
        let samples = v
            .get("samples")
            .and_then(Json::as_u64)
            .ok_or_else(|| field_error("samples"))?;
        let iters_per_sample = v
            .get("iters_per_sample")
            .and_then(Json::as_u64)
            .ok_or_else(|| field_error("iters_per_sample"))?;
        let throughput = match v.get("throughput") {
            Some(t) => Some(BenchThroughput::from_json(t)?),
            None => None,
        };
        Ok(BenchRecord {
            id,
            median_ns,
            mad_ns,
            samples,
            iters_per_sample,
            throughput,
        })
    }
}

/// Run metadata recorded alongside the numbers, so a reviewer can judge
/// whether two snapshots are comparable (same profile? same quick mode?
/// same machine class?). Never used for gating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// `git rev-parse --short HEAD` of the tree the suite ran on
    /// (`"unknown"` outside a git checkout).
    pub git_rev: String,
    /// Cargo profile the suite was compiled under (`release`/`debug`).
    pub profile: String,
    /// Host hardware threads available to the run.
    pub threads: u64,
    /// Whether the suite ran in `--quick` mode (smaller inputs).
    pub quick: bool,
    /// Write scheme the system-level benches exercised.
    pub scheme: String,
    /// Rank count of the system-level benches.
    pub ranks: u32,
}

impl JsonCodec for SnapshotMeta {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("git_rev", Json::str(self.git_rev.clone())),
            ("profile", Json::str(self.profile.clone())),
            ("threads", Json::UInt(self.threads)),
            ("quick", Json::Bool(self.quick)),
            ("scheme", Json::str(self.scheme.clone())),
            ("ranks", Json::UInt(self.ranks as u64)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let text = |field: &str| -> Result<String, JsonError> {
            Ok(v.get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| field_error(field))?
                .to_string())
        };
        let ranks = v
            .get("ranks")
            .and_then(Json::as_u64)
            .ok_or_else(|| field_error("ranks"))?;
        let ranks = u32::try_from(ranks).map_err(|_| field_error("ranks"))?;
        Ok(SnapshotMeta {
            git_rev: text("git_rev")?,
            profile: text("profile")?,
            threads: v
                .get("threads")
                .and_then(Json::as_u64)
                .ok_or_else(|| field_error("threads"))?,
            quick: v
                .get("quick")
                .and_then(Json::as_bool)
                .ok_or_else(|| field_error("quick"))?,
            scheme: text("scheme")?,
            ranks,
        })
    }
}

/// A complete perf snapshot: schema version, run metadata, and one
/// [`BenchRecord`] per canonical benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSnapshot {
    /// Schema version ([`BenchSnapshot::SCHEMA_VERSION`]).
    pub version: u64,
    /// Run metadata (informational).
    pub meta: SnapshotMeta,
    /// Per-benchmark statistics, in suite registration order.
    pub benches: Vec<BenchRecord>,
}

impl BenchSnapshot {
    /// Current schema version; bump on incompatible layout changes.
    pub const SCHEMA_VERSION: u64 = 1;

    /// Lookup a record by its full benchmark id.
    pub fn find(&self, id: &str) -> Option<&BenchRecord> {
        self.benches.iter().find(|b| b.id == id)
    }

    /// Structural validity: a snapshot must carry at least one benchmark,
    /// every id must be unique, every benchmark must have recorded at
    /// least one sample, and medians/MADs must be finite and non-negative.
    /// An empty or ambiguous snapshot would make every later comparison
    /// meaningless, so the producer fails loudly instead of writing one.
    pub fn validate(&self) -> Result<(), PcmError> {
        if self.version != Self::SCHEMA_VERSION {
            return Err(PcmError::config(format!(
                "snapshot schema version {} (this build reads {})",
                self.version,
                Self::SCHEMA_VERSION
            )));
        }
        if self.benches.is_empty() {
            return Err(PcmError::config(
                "snapshot contains no benchmarks (everything filtered out?)",
            ));
        }
        let mut seen: Vec<&str> = Vec::with_capacity(self.benches.len());
        for b in &self.benches {
            if seen.contains(&b.id.as_str()) {
                return Err(PcmError::config(format!(
                    "duplicate benchmark id `{}` — suite names must be unique",
                    b.id
                )));
            }
            seen.push(&b.id);
            if b.samples == 0 {
                return Err(PcmError::config(format!(
                    "benchmark `{}` recorded zero samples",
                    b.id
                )));
            }
            if !b.median_ns.is_finite() || b.median_ns < 0.0 {
                return Err(PcmError::config(format!(
                    "benchmark `{}` has a non-finite or negative median",
                    b.id
                )));
            }
            if !b.mad_ns.is_finite() || b.mad_ns < 0.0 {
                return Err(PcmError::config(format!(
                    "benchmark `{}` has a non-finite or negative MAD",
                    b.id
                )));
            }
        }
        Ok(())
    }
}

impl JsonCodec for BenchSnapshot {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str("pcm-bench-snapshot")),
            ("version", Json::UInt(self.version)),
            ("meta", self.meta.to_json()),
            (
                "benches",
                Json::Arr(self.benches.iter().map(BenchRecord::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.get("schema").and_then(Json::as_str) != Some("pcm-bench-snapshot") {
            return Err(field_error("schema"));
        }
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| field_error("version"))?;
        let meta = SnapshotMeta::from_json(v.get("meta").ok_or_else(|| field_error("meta"))?)?;
        let benches = v
            .get("benches")
            .and_then(Json::as_array)
            .ok_or_else(|| field_error("benches"))?
            .iter()
            .map(BenchRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchSnapshot {
            version,
            meta,
            benches,
        })
    }
}

/// The regression gate: how far a fresh median may drift above its
/// baseline before `bench-compare` flags it.
///
/// Threshold = `max(tolerance_pct% · base_median, k_mad · max(MADs))` —
/// the relative tolerance catches slow creep on stable benches, the MAD
/// term widens the band for benches whose samples genuinely scatter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GatePolicy {
    /// Relative tolerance in percent of the baseline median.
    pub tolerance_pct: f64,
    /// Noise-band multiplier on the larger of the two MADs.
    pub k_mad: f64,
}

impl Default for GatePolicy {
    /// 5 % or 3·MAD, whichever is larger — tight enough to catch a real
    /// hot-path regression, loose enough for same-machine noise.
    fn default() -> Self {
        GatePolicy {
            tolerance_pct: 5.0,
            k_mad: 3.0,
        }
    }
}

impl GatePolicy {
    /// Absolute threshold in ns for this base/fresh pair. When both MADs
    /// are 0 (constant series) the noise term vanishes and the relative
    /// tolerance alone decides — the k·MAD fallback, with no division.
    pub fn threshold_ns(&self, base: &BenchRecord, fresh: &BenchRecord) -> f64 {
        let noise = self.k_mad * base.mad_ns.max(fresh.mad_ns);
        (self.tolerance_pct / 100.0 * base.median_ns).max(noise)
    }

    /// True when `fresh` regressed beyond the threshold relative to `base`.
    pub fn is_regression(&self, base: &BenchRecord, fresh: &BenchRecord) -> bool {
        fresh.median_ns - base.median_ns > self.threshold_ns(base, fresh)
    }

    /// True when `fresh` improved beyond the threshold (informational —
    /// improvements never gate, but the delta table calls them out).
    pub fn is_improvement(&self, base: &BenchRecord, fresh: &BenchRecord) -> bool {
        base.median_ns - fresh.median_ns > self.threshold_ns(base, fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propcheck::vec_of;
    use crate::{prop_assert, prop_assert_eq, propcheck};

    fn rec(id: &str, median: f64, mad: f64) -> BenchRecord {
        BenchRecord {
            id: id.to_string(),
            median_ns: median,
            mad_ns: mad,
            samples: 20,
            iters_per_sample: 64,
            throughput: None,
        }
    }

    fn meta() -> SnapshotMeta {
        SnapshotMeta {
            git_rev: "abc1234".into(),
            profile: "release".into(),
            threads: 8,
            quick: true,
            scheme: "tetris".into(),
            ranks: 1,
        }
    }

    #[test]
    fn snapshot_round_trips_and_finds() {
        let s = BenchSnapshot {
            version: BenchSnapshot::SCHEMA_VERSION,
            meta: meta(),
            benches: vec![
                BenchRecord {
                    throughput: Some(BenchThroughput {
                        unit: ThroughputUnit::Elements,
                        per_iter: 64,
                    }),
                    ..rec("canonical/analysis/plan", 123.5, 2.25)
                },
                rec("canonical/system/run", 1.5e6, 1000.0),
            ],
        };
        s.validate().unwrap();
        let text = s.to_json().to_string_pretty();
        let back = BenchSnapshot::from_json_str(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(
            s.find("canonical/system/run").map(|b| b.median_ns),
            Some(1.5e6)
        );
        assert!(s.find("nope").is_none());
        // Throughput derives from the median: 64 elem / 123.5 ns.
        let rate = s.benches[0].throughput_per_sec().unwrap();
        assert!((rate - 64.0 / 123.5e-9).abs() < 1.0);
    }

    #[test]
    fn validate_rejects_broken_snapshots() {
        let ok = rec("a", 1.0, 0.0);
        let base = BenchSnapshot {
            version: BenchSnapshot::SCHEMA_VERSION,
            meta: meta(),
            benches: vec![ok.clone()],
        };
        base.validate().unwrap();

        let empty = BenchSnapshot {
            benches: vec![],
            ..base.clone()
        };
        assert!(empty.validate().is_err(), "no benchmarks");

        let dup = BenchSnapshot {
            benches: vec![ok.clone(), ok.clone()],
            ..base.clone()
        };
        assert!(dup.validate().is_err(), "duplicate ids");

        let zero = BenchSnapshot {
            benches: vec![BenchRecord {
                samples: 0,
                ..ok.clone()
            }],
            ..base.clone()
        };
        assert!(zero.validate().is_err(), "zero samples");

        let nan = BenchSnapshot {
            benches: vec![BenchRecord {
                median_ns: f64::NAN,
                ..ok.clone()
            }],
            ..base.clone()
        };
        assert!(nan.validate().is_err(), "NaN median");

        let vers = BenchSnapshot {
            version: 99,
            ..base.clone()
        };
        assert!(vers.validate().is_err(), "future schema version");
    }

    #[test]
    fn from_json_rejects_wrong_schema_tag() {
        assert!(BenchSnapshot::from_json_str("{\"schema\":\"other\"}").is_err());
        assert!(BenchSnapshot::from_json_str("[]").is_err());
    }

    #[test]
    fn gate_threshold_takes_the_larger_band() {
        let p = GatePolicy::default(); // 5% or 3·MAD
        let base = rec("x", 1000.0, 30.0);
        let fresh = rec("x", 1000.0, 10.0);
        // 5% of 1000 = 50 < 3·30 = 90 → MAD band wins.
        assert_eq!(p.threshold_ns(&base, &fresh), 90.0);
        // Stable bench: MAD 1 → 3·1 = 3 < 50 → tolerance wins.
        let stable = rec("x", 1000.0, 1.0);
        assert_eq!(p.threshold_ns(&stable, &stable), 50.0);
    }

    #[test]
    fn zero_mad_falls_back_to_tolerance() {
        let p = GatePolicy::default();
        let base = rec("x", 100.0, 0.0);
        // Constant series: threshold is exactly 5% of the median; a +4%
        // drift passes, +6% trips — and nothing divided by the zero MAD.
        assert_eq!(p.threshold_ns(&base, &base), 5.0);
        assert!(!p.is_regression(&base, &rec("x", 104.0, 0.0)));
        assert!(p.is_regression(&base, &rec("x", 106.0, 0.0)));
        assert!(p.is_improvement(&base, &rec("x", 94.0, 0.0)));
    }

    #[test]
    fn regression_and_improvement_are_exclusive() {
        let p = GatePolicy::default();
        let base = rec("x", 1000.0, 20.0);
        for fresh_median in [900.0, 950.0, 1000.0, 1050.0, 1100.0] {
            let fresh = rec("x", fresh_median, 20.0);
            assert!(
                !(p.is_regression(&base, &fresh) && p.is_improvement(&base, &fresh)),
                "median {fresh_median} flagged both ways"
            );
        }
    }

    propcheck! {
        cases = 64;

        /// Snapshots survive a JSON round trip bit-for-bit. Quarter-ns
        /// values exercise the fractional f64 path exactly.
        fn snapshot_json_round_trip(
            medians in vec_of(1u64..=4_000_000_000, 4),
            mads in vec_of(0u64..=4_000_000, 4),
            samples in 0u64..1000,
        ) {
            let benches: Vec<BenchRecord> = medians
                .iter()
                .zip(&mads)
                .enumerate()
                .map(|(i, (&m, &d))| BenchRecord {
                    id: format!("grp/bench{i}"),
                    median_ns: m as f64 * 0.25,
                    mad_ns: d as f64 * 0.25,
                    samples: samples + 1,
                    iters_per_sample: 7,
                    throughput: (i % 2 == 0).then_some(BenchThroughput {
                        unit: ThroughputUnit::Bytes,
                        per_iter: 64,
                    }),
                })
                .collect();
            let s = BenchSnapshot {
                version: BenchSnapshot::SCHEMA_VERSION,
                meta: meta(),
                benches,
            };
            prop_assert!(s.validate().is_ok());
            let back = BenchSnapshot::from_json_str(&s.to_json_string());
            prop_assert_eq!(back, Ok(s));
        }

        /// The gate never flags a fresh median inside the threshold band,
        /// always flags one beyond it, and a self-comparison never trips.
        fn gate_is_a_band(median_q in 4u64..=4_000_000, mad_q in 0u64..=40_000) {
            let (median, mad) = (median_q as f64 * 0.25, mad_q as f64 * 0.25);
            let p = GatePolicy::default();
            let base = rec("b", median, mad);
            prop_assert!(!p.is_regression(&base, &base), "self-diff tripped");
            prop_assert!(!p.is_improvement(&base, &base));
            let t = p.threshold_ns(&base, &base);
            let t_positive = t > 0.0;
            prop_assert!(t_positive, "threshold must be positive for positive medians");
            let inside = rec("b", median + t * 0.5, mad);
            prop_assert!(!p.is_regression(&base, &inside));
            let outside = rec("b", median + t * 2.0 + 1e-6, mad);
            prop_assert!(p.is_regression(&base, &outside));
        }
    }
}
