//! Instantaneous-current budgeting.
//!
//! The charge pump can only source a bounded instantaneous current, which is
//! what limits the number of concurrent bit-writes. Following the paper we
//! account in *SET-equivalents*: one SET costs 1 budget unit and one RESET
//! costs `L` units (the power asymmetry, `Creset ≈ 2 × Cset`, so `L = 2`).

/// Current-budget parameters for one memory bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PowerParams {
    /// Power asymmetry `L`: the current of one RESET in units of one SET.
    pub l_ratio: u32,
    /// Maximum instantaneous budget per bank, in SET-equivalents (`PBmax`).
    ///
    /// The paper's worked example: 32 per chip × 4 chips = 128 per bank,
    /// i.e. 128 concurrent SETs or 64 concurrent RESETs.
    pub budget_per_bank: u32,
    /// Number of chips sharing the bank budget (with GCP current stealing
    /// the bank budget is fungible across chips).
    pub chips_per_bank: u32,
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl PowerParams {
    /// Paper baseline: `L = 2`, 32 SET-equivalents per chip, 4 chips.
    pub const fn paper_baseline() -> Self {
        PowerParams {
            l_ratio: 2,
            budget_per_bank: 128,
            chips_per_bank: 4,
        }
    }

    /// Mobile/low-power configuration: the system can provide less current,
    /// shrinking the per-chip budget (the paper's X4/X2 discussion).
    pub const fn mobile(budget_per_chip: u32) -> Self {
        PowerParams {
            l_ratio: 2,
            budget_per_bank: budget_per_chip * 4,
            chips_per_bank: 4,
        }
    }

    /// Budget available to a single chip without GCP stealing.
    pub const fn budget_per_chip(&self) -> u32 {
        self.budget_per_bank / self.chips_per_bank
    }

    /// Instantaneous cost of `n` SET bit-writes.
    pub const fn set_cost(&self, n: u32) -> u32 {
        n
    }

    /// Instantaneous cost of `n` RESET bit-writes.
    pub const fn reset_cost(&self, n: u32) -> u32 {
        n * self.l_ratio
    }

    /// Maximum number of concurrent SETs the bank can drive.
    pub const fn max_concurrent_sets(&self) -> u32 {
        self.budget_per_bank
    }

    /// Maximum number of concurrent RESETs the bank can drive.
    pub const fn max_concurrent_resets(&self) -> u32 {
        self.budget_per_bank / self.l_ratio
    }

    /// Sanity check.
    pub fn validate(&self) -> Result<(), crate::PcmError> {
        if self.l_ratio == 0 {
            return Err(crate::PcmError::config("power asymmetry L must be ≥ 1"));
        }
        if self.budget_per_bank == 0 {
            return Err(crate::PcmError::config("power budget must be non-zero"));
        }
        if self.chips_per_bank == 0 || self.budget_per_bank % self.chips_per_bank != 0 {
            return Err(crate::PcmError::config(
                "bank budget must divide evenly across chips",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budget_matches_worked_example() {
        let p = PowerParams::paper_baseline();
        // "32 SET and 16 RESET operations can be operated concurrently per
        //  chip, i.e. 128 SET and 64 RESET per bank."
        assert_eq!(p.budget_per_chip(), 32);
        assert_eq!(p.max_concurrent_sets(), 128);
        assert_eq!(p.max_concurrent_resets(), 64);
    }

    #[test]
    fn costs() {
        let p = PowerParams::paper_baseline();
        assert_eq!(p.set_cost(10), 10);
        assert_eq!(p.reset_cost(10), 20);
    }

    #[test]
    fn mobile_shrinks_budget() {
        let p = PowerParams::mobile(4);
        assert_eq!(p.budget_per_bank, 16);
        assert_eq!(p.max_concurrent_resets(), 8);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation() {
        assert!(PowerParams::paper_baseline().validate().is_ok());
        assert!(PowerParams {
            l_ratio: 0,
            ..PowerParams::paper_baseline()
        }
        .validate()
        .is_err());
        assert!(PowerParams {
            budget_per_bank: 0,
            ..PowerParams::paper_baseline()
        }
        .validate()
        .is_err());
        assert!(PowerParams {
            chips_per_bank: 3,
            ..PowerParams::paper_baseline()
        }
        .validate()
        .is_err());
    }
}
