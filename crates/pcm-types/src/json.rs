//! A minimal JSON value model, writer, and recursive-descent parser.
//!
//! Replaces `serde_json` for the workspace's needs: persisting experiment
//! results (`results_full.json`) and JSON-lines traces. Deliberately small:
//!
//! * Numbers are kept exact where it matters — integers without a decimal
//!   point parse into [`Json::UInt`]/[`Json::Int`] so `u64` counters
//!   (picosecond sums, pulse counts) round-trip bit-for-bit; anything with
//!   a `.` or exponent becomes [`Json::Num`] (an `f64`).
//! * Non-finite floats (`NaN`, `±inf`) have no JSON representation and are
//!   written as `null`, matching `serde_json`'s behaviour.
//! * Strings are escaped per RFC 8259 (`"` `\` control characters, with
//!   `\uXXXX` for the rest of C0), and the parser understands `\u` escapes
//!   including surrogate pairs.
//!
//! The parser rejects trailing garbage and guards recursion depth, so it
//! is safe to point at untrusted files.

use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`, and the encoding of non-finite floats.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (fits `u64`).
    UInt(u64),
    /// A negative integer (fits `i64`).
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs (no deduplication).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl From<JsonError> for std::io::Error {
    fn from(e: JsonError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Structured ⇄ [`Json`] conversion for every record the workspace persists
/// (experiment results, latency histograms, workload traces, telemetry
/// events).
///
/// One trait replaces the copy-pasted inherent `to_json`/`from_json` pairs
/// that used to live on each type. Implementations must round-trip:
/// `T::from_json(&t.to_json()) == Ok(t)` for every representable value —
/// the workspace's `propcheck!` suites assert this per type.
pub trait JsonCodec: Sized {
    /// Encode `self` as a JSON value.
    fn to_json(&self) -> Json;

    /// Decode from a JSON value produced by [`JsonCodec::to_json`].
    ///
    /// Unknown fields are ignored (forward compatibility); missing or
    /// ill-typed required fields yield a [`JsonError`] naming the field.
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// Encode straight to a compact one-line string (JSONL-friendly).
    fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Parse a string and decode in one step.
    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(s)?)
    }
}

/// Build the [`JsonError`] used by [`JsonCodec`] decoders for a missing or
/// ill-typed field.
pub fn field_error(field: &str) -> JsonError {
    JsonError {
        offset: 0,
        msg: format!("missing or invalid field `{field}`"),
    }
}

impl Json {
    // ----- constructors ---------------------------------------------------

    /// An object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An array of `u64`s.
    pub fn u64_array(vals: &[u64]) -> Json {
        Json::Arr(vals.iter().map(|&v| Json::UInt(v)).collect())
    }

    // ----- accessors ------------------------------------------------------

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (integers coerce; `Null` is NaN for round-trips).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            Json::Num(v) => Some(v),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as `u64` (only from non-negative integers).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    // ----- writing --------------------------------------------------------

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` prints the shortest string that round-trips.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    // ----- parsing --------------------------------------------------------

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parser recursion ceiling (arrays/objects nested deeper than this fail).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                        offset: start,
                        msg: "invalid UTF-8".into(),
                    })?;
                    let c = s.chars().next().ok_or_else(|| JsonError {
                        offset: start,
                        msg: "truncated UTF-8 sequence".into(),
                    })?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The scanned range is all ASCII (digits, sign, dot, exponent).
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ASCII byte in number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string_compact(), text);
        }
    }

    #[test]
    fn u64_integers_are_exact() {
        let big = u64::MAX - 3;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v, Json::UInt(big));
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v.to_string_compact(), big.to_string());
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(Json::parse("-12").unwrap(), Json::Int(-12));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Num(2500.0));
        assert_eq!(Json::parse("-0.125").unwrap(), Json::Num(-0.125));
    }

    #[test]
    fn nan_and_infinity_write_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_string_compact(), "null");
        // And null reads back as NaN through the float accessor.
        assert!(Json::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t bell\u{07} unicode→é";
        let written = Json::Str(nasty.to_string()).to_string_compact();
        assert!(written.contains("\\\""));
        assert!(written.contains("\\\\"));
        assert!(written.contains("\\n"));
        assert!(written.contains("\\u0007"));
        let back = Json::parse(&written).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""é""#).unwrap().as_str(), Some("é"));
        // 𝄞 U+1D11E as a surrogate pair.
        assert_eq!(Json::parse(r#""𝄞""#).unwrap().as_str(), Some("𝄞"));
        assert!(Json::parse(r#""\ud834""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"name":"vips","runs":[1,2,3],"ipc":0.75,"ok":true,"note":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("vips"));
        assert_eq!(v.get("runs").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.to_string_compact(), text);
        // Pretty output parses back to the same value.
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
            "[1]]",
            "nul",
            "+1",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_guarded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn f64_shortest_form_round_trips() {
        for x in [0.1, 1.0 / 3.0, 123456.789, 1e-9, 2.2250738585072014e-308] {
            let s = Json::Num(x).to_string_compact();
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }
}
