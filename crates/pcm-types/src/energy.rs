//! Per-operation programming energy.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// Energy in picojoules (integral; per-bit energies are small integers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PicoJoules(pub u64);

impl PicoJoules {
    /// Zero energy.
    pub const ZERO: PicoJoules = PicoJoules(0);

    /// Value in picojoules.
    pub const fn as_pj(self) -> u64 {
        self.0
    }

    /// Value in nanojoules.
    pub fn as_nj_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl Add for PicoJoules {
    type Output = PicoJoules;
    fn add(self, rhs: PicoJoules) -> PicoJoules {
        PicoJoules(self.0 + rhs.0)
    }
}

impl AddAssign for PicoJoules {
    fn add_assign(&mut self, rhs: PicoJoules) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for PicoJoules {
    type Output = PicoJoules;
    fn mul(self, rhs: u64) -> PicoJoules {
        PicoJoules(self.0 * rhs)
    }
}

impl Sum for PicoJoules {
    fn sum<I: Iterator<Item = PicoJoules>>(iter: I) -> PicoJoules {
        iter.fold(PicoJoules::ZERO, |a, b| a + b)
    }
}

/// Per-bit / per-access energies.
///
/// Values are representative of published SLC PCM prototypes; what matters
/// for the reproduction is the *ratio* structure: a RESET pulse draws ~2×
/// the current of a SET but for ~1/8 the time, so per-bit RESET energy is
/// roughly a quarter of SET energy; array reads are far cheaper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnergyParams {
    /// Energy of one SET bit-write.
    pub e_set: PicoJoules,
    /// Energy of one RESET bit-write.
    pub e_reset: PicoJoules,
    /// Energy of one array read (whole data unit).
    pub e_read_unit: PicoJoules,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl EnergyParams {
    /// Baseline: E_set ∝ Cset·Tset = 1·430, E_reset ∝ Creset·Treset = 2·53.
    ///
    /// Normalized to pJ-scale integers: `E_set = 430`, `E_reset = 106`,
    /// `E_read = 25` per 64-bit unit.
    pub const fn paper_baseline() -> Self {
        EnergyParams {
            e_set: PicoJoules(430),
            e_reset: PicoJoules(106),
            e_read_unit: PicoJoules(25),
        }
    }

    /// Total programming energy for a bit mix.
    pub fn write_energy(&self, sets: u64, resets: u64) -> PicoJoules {
        self.e_set * sets + self.e_reset * resets
    }

    /// Energy for reading `units` data units.
    pub fn read_energy(&self, units: u64) -> PicoJoules {
        self.e_read_unit * units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_ratio_follows_current_time_product() {
        let e = EnergyParams::paper_baseline();
        // E_reset / E_set = (2·53)/(1·430) ≈ 0.246.
        let ratio = e.e_reset.as_pj() as f64 / e.e_set.as_pj() as f64;
        assert!((ratio - 0.2465).abs() < 0.01);
    }

    #[test]
    fn write_energy_sums() {
        let e = EnergyParams::paper_baseline();
        assert_eq!(e.write_energy(2, 3), PicoJoules(2 * 430 + 3 * 106));
        assert_eq!(e.write_energy(0, 0), PicoJoules::ZERO);
    }

    #[test]
    fn arithmetic() {
        let total: PicoJoules = [PicoJoules(1), PicoJoules(2)].into_iter().sum();
        assert_eq!(total, PicoJoules(3));
        assert_eq!(PicoJoules(1_500).as_nj_f64(), 1.5);
    }
}
