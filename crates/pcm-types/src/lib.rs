//! # pcm-types
//!
//! Fundamental, dependency-light types shared by every crate in the
//! Tetris Write stack:
//!
//! * [`time`] — picosecond-resolution simulation time ([`Ps`]) so that event
//!   ordering is exact (no floating-point timestamps in the simulator).
//! * [`timing`] — PCM pulse timings ([`PcmTimings`], Table II of the paper:
//!   READ 50 ns, RESET 53 ns, SET 430 ns) and the derived time-asymmetry
//!   ratio `K`.
//! * [`power`] — instantaneous-current budgeting ([`PowerParams`]): a SET
//!   costs one budget unit, a RESET costs `L` (= 2) units, and a bank may
//!   spend at most `PBmax` (= 128) units at any instant.
//! * [`energy`] — per-bit programming energy ([`EnergyParams`]).
//! * [`org`] — memory organization ([`MemOrg`]): chips per bank, write-unit
//!   size, cache-line size, bank/rank counts.
//! * [`addr`] — physical-address decomposition ([`AddrMap`]).
//! * [`data`] — cache-line payloads ([`LineData`]) and 64-bit data units.
//! * [`bits`] — SET/RESET transition counting and Hamming distances.
//! * [`flip`] — Flip-N-Write data-inversion coding (Algorithm 1's
//!   read-before-write comparison).
//! * [`coset`] — WIRE-style restricted coset coding: a small XOR-mask
//!   codebook generalizing the flip bit, with the row index packed into
//!   the tag word's top bits.
//! * [`demand`] — the per-data-unit write demand ([`UnitDemand`],
//!   [`LineDemand`]) that every write scheme consumes.
//!
//! Plus the stdlib-only infrastructure that keeps the workspace free of
//! external crates (the whole tree builds with `cargo build --offline`):
//!
//! * [`rng`] — deterministic pseudo-random generation (splitmix64 and
//!   xoshiro256**) behind a `rand`-compatible [`rng::Rng`] trait.
//! * [`json`] — a minimal JSON value model, writer, and parser for
//!   experiment results and trace files.
//! * [`mod@propcheck`] — a seeded property-testing harness with shrinking
//!   (the [`propcheck!`] macro replaces `proptest!` blocks).
//! * [`stats`] — nearest-rank percentile machinery ([`Percentiles`])
//!   shared by telemetry summaries, the adaptive scheduler, and the
//!   `pcm-serve` SLO report.
//!
//! Everything here is `#![forbid(unsafe_code)]`, allocation-free on the hot
//! paths (fixed-capacity line buffers), and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod bits;
pub mod collections;
pub mod coset;
pub mod data;
pub mod demand;
pub mod energy;
pub mod error;
pub mod flip;
pub mod json;
pub mod org;
pub mod perf;
pub mod power;
pub mod propcheck;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timing;

pub use addr::{AddrMap, DecodedAddr, PhysAddr};
pub use bits::{hamming, hamming_unit, transitions, Transitions};
pub use collections::{sorted_entries, sorted_keys, sorted_values};
pub use coset::{
    coset_decode, coset_decode_unit, coset_row, coset_rows_available, coset_unit_flips,
    with_coset_row, COSET_PATTERNS, COSET_ROWS, COSET_ROW_SHIFT,
};
pub use data::{DataUnit, LineData, MAX_LINE_BYTES, MAX_UNITS_PER_LINE};
pub use demand::{LineDemand, UnitDemand};
pub use energy::{EnergyParams, PicoJoules};
pub use error::PcmError;
pub use flip::{flip_decode, flip_encode, flip_units, FlipBitWrite, FlipDecision, FlippedLine};
pub use json::{Json, JsonCodec, JsonError};
pub use org::MemOrg;
pub use perf::{
    BenchRecord, BenchSnapshot, BenchThroughput, GatePolicy, SnapshotMeta, ThroughputUnit,
};
pub use power::PowerParams;
pub use stats::Percentiles;
pub use time::Ps;
pub use timing::PcmTimings;
