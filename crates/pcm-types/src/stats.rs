//! Nearest-rank percentile machinery shared by every layer that reports
//! distributions: `TraceSummary`'s queue-depth tables, the adaptive
//! scheduler's watermark percentiles, and `pcm-serve`'s per-tenant SLO
//! report all compute percentiles through this one module instead of
//! carrying private copies.
//!
//! Semantics are the classic *nearest-rank* definition: for `n` samples
//! and a level `p` in `[0, 1]`, the percentile is the sample at 1-based
//! rank `max(1, ceil(n · p))` of the sorted series. `p = 0` is the
//! minimum, `p = 1` the maximum, and the result is always an observed
//! sample (no interpolation), which keeps integer series exact.

/// 1-based nearest rank for `n` samples at level `p` (clamped to
/// `[0, 1]`). Returns 0 when `n == 0` — there is no rank to pick.
pub fn nearest_rank(n: u64, p: f64) -> u64 {
    if n == 0 {
        return 0;
    }
    let rank = ((n as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
    rank.min(n)
}

/// Nearest-rank percentile of an already-**sorted** slice.
/// `None` when the slice is empty.
pub fn percentile_sorted<T: Copy + Ord>(sorted: &[T], p: f64) -> Option<T> {
    let rank = nearest_rank(sorted.len() as u64, p);
    if rank == 0 {
        return None;
    }
    Some(sorted[rank as usize - 1])
}

/// Nearest-rank percentile of a value-indexed count histogram
/// (`counts[v]` = observations of value `v`): the smallest index whose
/// cumulative count reaches the rank. `None` when the histogram is
/// empty (all counts zero).
pub fn percentile_from_counts(counts: &[u64], p: f64) -> Option<usize> {
    let samples: u64 = counts.iter().sum();
    let rank = nearest_rank(samples, p);
    if rank == 0 {
        return None;
    }
    let mut acc = 0u64;
    for (value, &count) in counts.iter().enumerate() {
        acc += count;
        if acc >= rank {
            return Some(value);
        }
    }
    None
}

/// A sorted sample series with nearest-rank percentile queries — the
/// shape every SLO-style report (`p50`/`p95`/`p99`/`p99.9`) consumes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Percentiles<T> {
    sorted: Vec<T>,
}

impl<T: Copy + Ord> Percentiles<T> {
    /// Build from unordered observations (sorts once, queries are O(1)).
    pub fn from_unsorted(mut samples: Vec<T>) -> Self {
        samples.sort_unstable();
        Percentiles { sorted: samples }
    }

    /// Build from an already-sorted series (sortedness is the caller's
    /// contract; checked in debug builds).
    pub fn from_sorted(samples: Vec<T>) -> Self {
        debug_assert!(samples.windows(2).all(|w| w[0] <= w[1]));
        Percentiles { sorted: samples }
    }

    /// Nearest-rank percentile at level `p`; `None` when empty.
    pub fn at(&self, p: f64) -> Option<T> {
        percentile_sorted(&self.sorted, p)
    }

    /// Nearest-rank percentile at level `p`, or `default` when empty.
    pub fn at_or(&self, p: f64, default: T) -> T {
        self.at(p).unwrap_or(default)
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted series itself.
    pub fn as_slice(&self) -> &[T] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propcheck::vec_of;
    use crate::{prop_assert, prop_assert_eq, propcheck};

    #[test]
    fn exact_on_known_series() {
        let p = Percentiles::from_unsorted((1u32..=100).rev().collect());
        assert_eq!(p.at(0.50), Some(50));
        assert_eq!(p.at(0.95), Some(95));
        assert_eq!(p.at(0.99), Some(99));
        assert_eq!(p.at(0.999), Some(100));
        assert_eq!(p.at(1.0), Some(100));
        assert_eq!(p.at(0.0), Some(1));
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Percentiles<u64> = Percentiles::from_unsorted(Vec::new());
        assert!(empty.is_empty());
        assert_eq!(empty.at(0.5), None);
        assert_eq!(empty.at_or(0.5, 9), 9);
        let one = Percentiles::from_sorted(vec![7u32]);
        assert_eq!(one.at(0.0), Some(7));
        assert_eq!(one.at(0.5), Some(7));
        assert_eq!(one.at(1.0), Some(7));
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn out_of_range_levels_clamp() {
        let p = Percentiles::from_sorted(vec![1u32, 2, 3]);
        assert_eq!(p.at(-0.5), Some(1));
        assert_eq!(p.at(1.5), Some(3));
    }

    #[test]
    fn counts_histogram_matches_expanded_series() {
        // counts[v] = observations of value v; expand and cross-check.
        let counts = [0u64, 3, 0, 2, 5, 0, 1];
        let mut expanded = Vec::new();
        for (v, &c) in counts.iter().enumerate() {
            expanded.extend(std::iter::repeat_n(v, c as usize));
        }
        let series = Percentiles::from_sorted(expanded);
        for p in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(percentile_from_counts(&counts, p), series.at(p), "p={p}");
        }
        assert_eq!(percentile_from_counts(&[], 0.5), None);
        assert_eq!(percentile_from_counts(&[0, 0], 0.5), None);
    }

    #[test]
    fn nearest_rank_edges() {
        assert_eq!(nearest_rank(0, 0.5), 0);
        assert_eq!(nearest_rank(100, 0.0), 1);
        assert_eq!(nearest_rank(100, 1.0), 100);
        assert_eq!(nearest_rank(100, 0.95), 95);
        // ceil(100 · 0.999) = 100 — p99.9 of 100 samples is the max.
        assert_eq!(nearest_rank(100, 0.999), 100);
    }

    propcheck! {
        /// Monotone in rank: raising the level never lowers the result.
        fn monotone_in_rank(
            vals in vec_of(0u64..=1 << 40, 1..=128),
            a in 0u64..=1000,
            b in 0u64..=1000
        ) {
            let (lo, hi) = (a.min(b), a.max(b));
            let p = Percentiles::from_unsorted(vals);
            let at_lo = p.at(lo as f64 / 1000.0);
            let at_hi = p.at(hi as f64 / 1000.0);
            prop_assert!(at_lo <= at_hi);
        }

        /// Every percentile is an observed sample, bounded by min/max.
        fn result_is_an_observed_sample(
            vals in vec_of(0u32..=1 << 20, 1..=64),
            level in 0u64..=1000
        ) {
            let p = Percentiles::from_unsorted(vals.clone());
            let q = p.at(level as f64 / 1000.0);
            prop_assert!(q.is_some());
            let q = q.unwrap_or(0);
            prop_assert!(vals.contains(&q));
            prop_assert!(q >= *vals.iter().min().unwrap_or(&0));
            prop_assert!(q <= *vals.iter().max().unwrap_or(&0));
        }

        /// The histogram walk and the sorted-slice form agree on any
        /// small-valued series.
        fn counts_agree_with_sorted(
            vals in vec_of(0usize..16, 0..=64),
            level in 0u64..=1000
        ) {
            let mut counts = [0u64; 16];
            for &v in &vals {
                counts[v] += 1;
            }
            let p = level as f64 / 1000.0;
            let sorted = Percentiles::from_unsorted(vals);
            prop_assert_eq!(percentile_from_counts(&counts, p), sorted.at(p));
        }
    }
}
