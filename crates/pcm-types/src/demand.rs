//! Per-data-unit write demand — the `NUM1[i]` / `NUM0[i]` counts that the
//! Tetris analysis stage (Algorithm 2) and the baseline schemes consume.

use crate::data::MAX_UNITS_PER_LINE;
use crate::flip::FlippedLine;

/// SET/RESET bit-write counts for one data unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitDemand {
    /// Number of '1' bit-writes (`NUM1[i]`, slow low-current SETs).
    pub sets: u32,
    /// Number of '0' bit-writes (`NUM0[i]`, fast high-current RESETs).
    pub resets: u32,
}

impl UnitDemand {
    /// Construct from counts.
    pub const fn new(sets: u32, resets: u32) -> Self {
        UnitDemand { sets, resets }
    }

    /// Total changed bits.
    pub const fn total(&self) -> u32 {
        self.sets + self.resets
    }

    /// True if the unit needs no programming at all.
    pub const fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Instantaneous current of this unit's SETs, in SET-equivalents
    /// (`IN1[i] = NUM1[i]`).
    pub const fn set_current(&self) -> u32 {
        self.sets
    }

    /// Instantaneous current of this unit's RESETs (`IN0[i] = NUM0[i]·L`).
    pub const fn reset_current(&self, l_ratio: u32) -> u32 {
        self.resets * l_ratio
    }
}

/// Write demand for a whole cache line: one [`UnitDemand`] per data unit.
///
/// Fixed capacity — the write path never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineDemand {
    units: [UnitDemand; MAX_UNITS_PER_LINE],
    len: usize,
}

impl LineDemand {
    /// Empty demand for `len` data units.
    ///
    /// # Panics
    /// If `len` exceeds [`MAX_UNITS_PER_LINE`].
    pub fn empty(len: usize) -> Self {
        assert!(len <= MAX_UNITS_PER_LINE, "too many data units");
        LineDemand {
            units: [UnitDemand::default(); MAX_UNITS_PER_LINE],
            len,
        }
    }

    /// Build from a slice of per-unit demands.
    pub fn from_units(units: &[UnitDemand]) -> Self {
        let mut d = Self::empty(units.len());
        d.units[..units.len()].copy_from_slice(units);
        d
    }

    /// Extract demand (flip cells included) from a flip-encoded line.
    pub fn from_flipped(fl: &FlippedLine) -> Self {
        let ds = fl.decisions();
        let mut d = Self::empty(ds.len());
        for (i, dec) in ds.iter().enumerate() {
            d.units[i] = UnitDemand::new(dec.num_sets(), dec.num_resets());
        }
        d
    }

    /// Number of data units.
    pub const fn len(&self) -> usize {
        self.len
    }

    /// True if there are no data units.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-unit view.
    pub fn units(&self) -> &[UnitDemand] {
        &self.units[..self.len]
    }

    /// Mutable per-unit view.
    pub fn units_mut(&mut self) -> &mut [UnitDemand] {
        &mut self.units[..self.len]
    }

    /// Total SETs across the line.
    pub fn total_sets(&self) -> u32 {
        self.units().iter().map(|u| u.sets).sum()
    }

    /// Total RESETs across the line.
    pub fn total_resets(&self) -> u32 {
        self.units().iter().map(|u| u.resets).sum()
    }

    /// Total changed bits across the line.
    pub fn total_changed(&self) -> u32 {
        self.total_sets() + self.total_resets()
    }

    /// Number of units that need at least one SET.
    pub fn units_with_sets(&self) -> u32 {
        self.units().iter().filter(|u| u.sets > 0).count() as u32
    }

    /// Number of units that need at least one RESET.
    pub fn units_with_resets(&self) -> u32 {
        self.units().iter().filter(|u| u.resets > 0).count() as u32
    }

    /// Number of units that need any programming.
    pub fn dirty_units(&self) -> u32 {
        self.units().iter().filter(|u| !u.is_empty()).count() as u32
    }

    /// Concatenate several lines' demands into one flat demand (for
    /// batched scheduling across queued writes). Returns `None` if the
    /// combined unit count exceeds [`MAX_UNITS_PER_LINE`].
    pub fn concat(parts: &[&LineDemand]) -> Option<LineDemand> {
        let total: usize = parts.iter().map(|d| d.len()).sum();
        if total > MAX_UNITS_PER_LINE {
            return None;
        }
        let mut out = LineDemand::empty(total);
        let mut at = 0;
        for d in parts {
            out.units_mut()[at..at + d.len()].copy_from_slice(d.units());
            at += d.len();
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::LineData;
    use crate::flip::flip_units;

    #[test]
    fn totals() {
        let d = LineDemand::from_units(&[
            UnitDemand::new(3, 1),
            UnitDemand::new(0, 0),
            UnitDemand::new(0, 2),
        ]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.total_sets(), 3);
        assert_eq!(d.total_resets(), 3);
        assert_eq!(d.total_changed(), 6);
        assert_eq!(d.units_with_sets(), 1);
        assert_eq!(d.units_with_resets(), 2);
        assert_eq!(d.dirty_units(), 2);
    }

    #[test]
    fn currents_respect_asymmetry() {
        let u = UnitDemand::new(5, 3);
        assert_eq!(u.set_current(), 5);
        assert_eq!(u.reset_current(2), 6);
    }

    #[test]
    fn from_flipped_matches_decisions() {
        let old = LineData::zeroed(64);
        let mut new = LineData::zeroed(64);
        new.set_unit(0, 0b11); // 2 SETs
        new.set_unit(5, u64::MAX); // flip → 1 flip-bit SET only
        let fl = flip_units(&old, 0, &new);
        let d = LineDemand::from_flipped(&fl);
        assert_eq!(d.units()[0], UnitDemand::new(2, 0));
        assert_eq!(d.units()[5], UnitDemand::new(1, 0));
        assert_eq!(d.total_changed(), 3);
    }

    #[test]
    fn concat_flattens_and_caps() {
        let a = LineDemand::from_units(&[UnitDemand::new(1, 0); 8]);
        let b = LineDemand::from_units(&[UnitDemand::new(0, 2); 8]);
        let c = LineDemand::concat(&[&a, &b]).unwrap();
        assert_eq!(c.len(), 16);
        assert_eq!(c.total_sets(), 8);
        assert_eq!(c.total_resets(), 16);
        assert_eq!(c.units()[0], UnitDemand::new(1, 0));
        assert_eq!(c.units()[8], UnitDemand::new(0, 2));
        // 5 lines of 8 units exceed the 32-unit buffer.
        assert!(LineDemand::concat(&[&a, &a, &a, &a, &a]).is_none());
    }

    #[test]
    fn empty_line() {
        let d = LineDemand::empty(8);
        assert_eq!(d.dirty_units(), 0);
        assert_eq!(d.total_changed(), 0);
    }
}
