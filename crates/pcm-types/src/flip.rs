//! Flip-N-Write data-inversion coding (the read stage of Algorithm 1).
//!
//! Each data unit carries one extra *flip* cell. Before writing, the old
//! stored bits `{D', F'}` are read; if storing the new data directly would
//! change more than half of the `N+1` cells, the inverted data is stored
//! with the flip bit set. This bounds the changed-bit count per unit to
//! `≤ ⌈(N+1)/2⌉`, which is what lets Flip-N-Write (and every scheme built on
//! it, including Tetris Write) halve worst-case current demand.

use crate::bits::{hamming_unit, transitions, Transitions};
use crate::data::{DataUnit, LineData, MAX_UNITS_PER_LINE};

/// Outcome of flip-encoding one data unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlipDecision {
    /// The bits that will actually be stored in the array (possibly
    /// inverted relative to the logical data).
    pub stored: DataUnit,
    /// New flip-tag value.
    pub flip: bool,
    /// Transitions of the *data* cells (stored-old → stored-new).
    pub data_transitions: Transitions,
    /// Whether the flip cell itself changes (one extra SET or RESET).
    pub flip_transition: Option<FlipBitWrite>,
}

/// Which way the flip cell is written when it changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlipBitWrite {
    /// Flip cell goes 0 → 1 (a SET).
    Set,
    /// Flip cell goes 1 → 0 (a RESET).
    Reset,
}

impl FlipDecision {
    /// Total SET bit-writes including the flip cell.
    pub fn num_sets(&self) -> u32 {
        self.data_transitions.num_sets()
            + matches!(self.flip_transition, Some(FlipBitWrite::Set)) as u32
    }

    /// Total RESET bit-writes including the flip cell.
    pub fn num_resets(&self) -> u32 {
        self.data_transitions.num_resets()
            + matches!(self.flip_transition, Some(FlipBitWrite::Reset)) as u32
    }

    /// Total changed cells including the flip cell.
    pub fn num_changed(&self) -> u32 {
        self.num_sets() + self.num_resets()
    }
}

/// Flip-encode one data unit (Algorithm 1, lines 1–7).
///
/// `old_stored`/`old_flip` are the bits currently in the array; `new` is the
/// logical data to be written. Chooses whichever encoding changes at most
/// half of the `N+1` cells.
///
/// ```
/// use pcm_types::{flip_encode, flip_decode};
///
/// // Writing all-ones over all-zeros would SET 64 cells; the encoder
/// // stores the inversion instead — a single flip-bit SET.
/// let d = flip_encode(0, false, u64::MAX);
/// assert!(d.flip);
/// assert_eq!(d.num_changed(), 1);
/// assert_eq!(flip_decode(d.stored, d.flip), u64::MAX);
/// ```
pub fn flip_encode(old_stored: DataUnit, old_flip: bool, new: DataUnit) -> FlipDecision {
    let n = DataUnit::BITS;
    // Hamming distance of candidate {D, 0} against stored {D', F'}.
    let dist_plain = hamming_unit(old_stored, new) + old_flip as u32;
    let (stored, flip) = if dist_plain > n / 2 {
        (!new, true)
    } else {
        (new, false)
    };
    let data_transitions = transitions(old_stored, stored);
    let flip_transition = match (old_flip, flip) {
        (false, true) => Some(FlipBitWrite::Set),
        (true, false) => Some(FlipBitWrite::Reset),
        _ => None,
    };
    FlipDecision {
        stored,
        flip,
        data_transitions,
        flip_transition,
    }
}

/// Decode a stored unit back to logical data.
pub const fn flip_decode(stored: DataUnit, flip: bool) -> DataUnit {
    if flip {
        !stored
    } else {
        stored
    }
}

/// Flip-encoding of a whole cache line: one decision per data unit.
#[derive(Clone, Debug)]
pub struct FlippedLine {
    /// Bits to store (per unit, possibly inverted).
    pub stored: LineData,
    /// New flip-tag bitmask (bit `i` = flip tag of unit `i`).
    pub flips: u32,
    /// Per-unit decisions (fixed capacity, no allocation).
    decisions: [FlipDecision; MAX_UNITS_PER_LINE],
    num_units: usize,
}

impl FlippedLine {
    /// Per-unit decisions.
    pub fn decisions(&self) -> &[FlipDecision] {
        &self.decisions[..self.num_units]
    }

    /// Total SET / RESET bit-writes across the line (flip cells included).
    pub fn totals(&self) -> (u32, u32) {
        self.decisions()
            .iter()
            .fold((0, 0), |(s, r), d| (s + d.num_sets(), r + d.num_resets()))
    }
}

/// Flip-encode every data unit of a line.
///
/// `old_flips` is the current flip-tag bitmask.
///
/// # Panics
/// If the lines differ in length.
pub fn flip_units(old_stored: &LineData, old_flips: u32, new: &LineData) -> FlippedLine {
    assert_eq!(old_stored.len(), new.len(), "flip_units over unequal lines");
    let num_units = new.num_units();
    let mut stored = *new;
    let mut flips = 0u32;
    let empty = FlipDecision {
        stored: 0,
        flip: false,
        data_transitions: Transitions::default(),
        flip_transition: None,
    };
    let mut decisions = [empty; MAX_UNITS_PER_LINE];
    #[allow(clippy::needless_range_loop)] // indexes three structures in lockstep
    for i in 0..num_units {
        let old_flip = old_flips & (1 << i) != 0;
        let d = flip_encode(old_stored.unit(i), old_flip, new.unit(i));
        stored.set_unit(i, d.stored);
        if d.flip {
            flips |= 1 << i;
        }
        decisions[i] = d;
    }
    FlippedLine {
        stored,
        flips,
        decisions,
        num_units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propcheck::{any_bool, any_u64, vec_of};
    use crate::{prop_assert, prop_assert_eq, propcheck};

    #[test]
    fn no_flip_when_few_bits_change() {
        let d = flip_encode(0, false, 0b1011);
        assert!(!d.flip);
        assert_eq!(d.stored, 0b1011);
        assert_eq!(d.num_sets(), 3);
        assert_eq!(d.num_resets(), 0);
        assert!(d.flip_transition.is_none());
    }

    #[test]
    fn flips_when_most_bits_change() {
        // Old all-zeros, new all-ones: storing directly would SET 64 bits;
        // flipping stores all-zeros (no data change) plus one flip-bit SET.
        let d = flip_encode(0, false, u64::MAX);
        assert!(d.flip);
        assert_eq!(d.stored, 0);
        assert_eq!(d.data_transitions.num_changed(), 0);
        assert_eq!(d.flip_transition, Some(FlipBitWrite::Set));
        assert_eq!(d.num_changed(), 1);
    }

    #[test]
    fn exactly_half_does_not_flip() {
        // 32 changed bits + flip'0 = 32, not > 32 → no flip.
        let new = 0xFFFF_FFFF_0000_0000u64;
        let d = flip_encode(0, false, new);
        assert!(!d.flip);
        assert_eq!(d.num_changed(), 32);
    }

    #[test]
    fn stale_flip_tag_counts_in_distance() {
        // 32 data bits differ and the stored flip tag is 1 → distance 33 > 32.
        let new = 0xFFFF_FFFF_0000_0000u64;
        let d = flip_encode(0, true, new);
        assert!(d.flip);
        // Stored = !new → changed data bits = 32 (the other half), flip stays 1.
        assert_eq!(d.data_transitions.num_changed(), 32);
        assert!(d.flip_transition.is_none());
    }

    #[test]
    fn line_level_totals() {
        let old = LineData::zeroed(64);
        let mut new = LineData::zeroed(64);
        new.set_unit(0, 0b111); // 3 sets
        new.set_unit(1, u64::MAX); // flips → 1 flip-bit set
        let fl = flip_units(&old, 0, &new);
        assert_eq!(fl.flips, 0b10);
        let (sets, resets) = fl.totals();
        assert_eq!(sets, 4);
        assert_eq!(resets, 0);
    }

    propcheck! {
        /// The FNW guarantee: ≤ ⌈65/2⌉ = 32 changed cells per unit…
        /// actually `> 32` triggers the flip, so the max is 33−1 = 32 for
        /// the plain path and 65−33 = 32 for the flipped path.
        fn changed_cells_bounded_by_half(old in any_u64(), old_flip in any_bool(), new in any_u64()) {
            let d = flip_encode(old, old_flip, new);
            prop_assert!(d.num_changed() <= 32, "changed {} > 32", d.num_changed());
        }

        /// Decoding what we stored always returns the logical data.
        fn roundtrip(old in any_u64(), old_flip in any_bool(), new in any_u64()) {
            let d = flip_encode(old, old_flip, new);
            prop_assert_eq!(flip_decode(d.stored, d.flip), new);
        }

        /// The encoder picks the cheaper of the two encodings.
        fn encoder_is_optimal(old in any_u64(), old_flip in any_bool(), new in any_u64()) {
            let d = flip_encode(old, old_flip, new);
            let cost_plain = hamming_unit(old, new) + old_flip as u32;
            let cost_flip = hamming_unit(old, !new) + !old_flip as u32;
            prop_assert_eq!(d.num_changed(), cost_plain.min(cost_flip));
        }

        /// Line-level encoding agrees with unit-level encoding.
        fn line_matches_units(units in vec_of(any_u64(), 8),
                              olds in vec_of(any_u64(), 8),
                              old_flips in 0u32..256) {
            let old = LineData::from_units(&olds);
            let new = LineData::from_units(&units);
            let fl = flip_units(&old, old_flips, &new);
            for i in 0..8 {
                let d = flip_encode(olds[i], old_flips & (1 << i) != 0, units[i]);
                prop_assert_eq!(fl.decisions()[i], d);
                prop_assert_eq!(fl.stored.unit(i), d.stored);
                prop_assert_eq!(fl.flips & (1 << i) != 0, d.flip);
            }
        }
    }
}
