//! A tiny in-repo property-testing harness (replaces `proptest`).
//!
//! Seeded case generation plus greedy shrinking on failure:
//!
//! * A [`Strategy`] generates random values and proposes *shrink
//!   candidates* — simpler values from the same domain — for any value it
//!   produced. Integer ranges shrink toward their lower bound, vectors
//!   drop elements and shrink elements in place, tuples shrink one
//!   component at a time.
//! * [`check`] runs the property over `cases` generated inputs. On the
//!   first failure it descends through shrink candidates until no
//!   candidate fails, then panics with the minimal counterexample, the
//!   seed, and the failure message.
//!
//! Seeds are derived from the property name, so runs are reproducible by
//! default; set `PROPCHECK_SEED` to explore a different stream and
//! `PROPCHECK_CASES` to scale the case count (both read at run time).
//!
//! The [`propcheck!`][crate::propcheck!] macro gives property tests the
//! shape the old `proptest!` blocks had; `prop_assert!` /
//! `prop_assert_eq!` report failures without unwinding, but plain panics
//! (e.g. `unwrap`) inside a property are caught and shrunk too.

use crate::rng::SplitMix64;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of one property evaluation.
pub type PropResult = Result<(), String>;

/// A generator of random values that knows how to simplify them.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Value;

    /// Candidate simplifications of `v`, simplest first. Every candidate
    /// must itself be a value this strategy could have produced.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// --------------------------------------------------------------------------
// Integer range strategies
// --------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SplitMix64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi);
                let span = (hi - lo) as u64;
                lo + (crate::rng::Rng::gen_range(rng, 0u64..=span)) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let lo = *self.start();
                let mut out = Vec::new();
                if *v > lo {
                    out.push(lo);
                    let half = lo + (*v - lo) / 2;
                    if half != lo && half != *v {
                        out.push(half);
                    }
                    out.push(*v - 1);
                }
                out.dedup();
                out
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                (self.start..=self.end - 1).generate(rng)
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                (self.start..=self.end - 1).shrink(v)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// --------------------------------------------------------------------------
// Leaf strategies
// --------------------------------------------------------------------------

/// Strategy that always yields one value (no shrinking).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

/// Always produce `v`.
pub fn just<T: Clone + Debug>(v: T) -> Just<T> {
    Just(v)
}

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SplitMix64) -> T {
        self.0.clone()
    }
}

/// Uniform `u64` restricted to the bits of `mask`.
#[derive(Clone, Debug)]
pub struct MaskedU64(pub u64);

/// Any `u64` (all bits random).
pub fn any_u64() -> MaskedU64 {
    MaskedU64(u64::MAX)
}

/// Uniform `u64` with only `mask` bits allowed to be set.
pub fn masked_u64(mask: u64) -> MaskedU64 {
    MaskedU64(mask)
}

impl Strategy for MaskedU64 {
    type Value = u64;
    fn generate(&self, rng: &mut SplitMix64) -> u64 {
        rng.next_u64() & self.0
    }
    fn shrink(&self, v: &u64) -> Vec<u64> {
        let mut out = Vec::new();
        if *v != 0 {
            out.push(0);
            let fewer = (v >> 1) & self.0;
            if fewer != 0 && fewer != *v {
                out.push(fewer);
            }
            // Clear the highest set bit — often isolates the culprit bit.
            let top = *v & !(1u64 << (63 - v.leading_zeros()));
            if top != *v && !out.contains(&top) {
                out.push(top);
            }
        }
        out
    }
}

/// Uniform `bool`.
#[derive(Clone, Debug)]
pub struct AnyBool;

/// Either boolean; shrinks toward `false`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut SplitMix64) -> bool {
        rng.next_u64() >> 63 == 1
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Uniform choice among a fixed set of values (replaces
/// `prop_oneof![Just(a), Just(b), …]`). Shrinks toward earlier entries.
#[derive(Clone, Debug)]
pub struct OneOf<T>(Vec<T>);

/// Uniformly pick one of `values`.
pub fn one_of<T: Clone + Debug>(values: &[T]) -> OneOf<T> {
    assert!(!values.is_empty(), "one_of needs at least one value");
    OneOf(values.to_vec())
}

impl<T: Clone + Debug + PartialEq> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut SplitMix64) -> T {
        let i = crate::rng::Rng::gen_range(rng, 0..self.0.len());
        self.0[i].clone()
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        // Earlier alternatives count as simpler.
        self.0.iter().take_while(|x| *x != v).cloned().collect()
    }
}

/// Uniform choice among boxed sub-strategies sharing a value type
/// (replaces heterogeneous `prop_oneof!`).
pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

/// Pick one of `branches` per case, uniformly.
pub fn union<T: Clone + Debug>(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
    assert!(!branches.is_empty(), "union needs at least one branch");
    Union(branches)
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SplitMix64) -> T {
        let i = crate::rng::Rng::gen_range(rng, 0..self.0.len());
        self.0[i].generate(rng)
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        // Each branch only proposes candidates valid in its own domain,
        // so the union of proposals is valid for the union strategy.
        self.0.iter().flat_map(|b| b.shrink(v)).collect()
    }
}

// --------------------------------------------------------------------------
// Composite strategies
// --------------------------------------------------------------------------

/// Vector of values from an element strategy, with a length range.
pub struct VecOf<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

/// Lengths accepted by [`vec_of`]: a fixed `usize` or `min..=max`.
pub trait IntoLenRange {
    /// Convert to `(min, max)` inclusive bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoLenRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        self.into_inner()
    }
}

/// `Vec` of values drawn from `elem`, length within `len`.
pub fn vec_of<S: Strategy>(elem: S, len: impl IntoLenRange) -> VecOf<S> {
    let (min_len, max_len) = len.bounds();
    assert!(min_len <= max_len);
    VecOf {
        elem,
        min_len,
        max_len,
    }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SplitMix64) -> Vec<S::Value> {
        let len = crate::rng::Rng::gen_range(rng, self.min_len..=self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: drop elements while above min length.
        if v.len() > self.min_len {
            for i in (0..v.len()).rev() {
                let mut smaller = v.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Then element-wise shrinks, one position at a time.
        for (i, item) in v.iter().enumerate() {
            for cand in self.elem.shrink(item) {
                let mut copy = v.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut SplitMix64) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut copy = v.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);

// --------------------------------------------------------------------------
// Runner
// --------------------------------------------------------------------------

/// Default number of cases when the `propcheck!` block doesn't override it.
pub const DEFAULT_CASES: u32 = 256;
/// Hard ceiling on shrink iterations (each iteration tries all candidates
/// of the current counterexample).
const MAX_SHRINK_ITERS: u32 = 4_096;

fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn run_prop<V, F>(prop: &F, v: &V) -> PropResult
where
    F: Fn(&V) -> PropResult,
{
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(v)));
    match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Run `prop` over `cases` values generated by `strat`; shrink and panic
/// on failure. `name` seeds the generator (reproducible across runs) and
/// labels the report.
pub fn check<S, F>(name: &str, cases: u32, strat: S, prop: F)
where
    S: Strategy,
    F: Fn(&S::Value) -> PropResult,
{
    let seed = env_u64("PROPCHECK_SEED").unwrap_or_else(|| fxhash(name) ^ 0x7e72_15c0_ffee);
    let cases = env_u64("PROPCHECK_CASES")
        .map(|c| c as u32)
        .unwrap_or(cases);
    let mut rng = SplitMix64::new(seed);
    for case in 0..cases {
        let v = strat.generate(&mut rng);
        if let Err(msg) = run_prop(&prop, &v) {
            let (min_v, min_msg, shrinks) = shrink_failure(&strat, &prop, v, msg);
            panic!(
                "[propcheck] property '{name}' falsified at case {case}/{cases} \
                 (seed {seed:#x}, {shrinks} shrink steps)\n\
                 minimal input: {min_v:?}\n{min_msg}"
            );
        }
    }
}

fn shrink_failure<S, F>(
    strat: &S,
    prop: &F,
    mut cur: S::Value,
    mut msg: String,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(&S::Value) -> PropResult,
{
    let mut steps = 0u32;
    'outer: while steps < MAX_SHRINK_ITERS {
        for cand in strat.shrink(&cur) {
            steps += 1;
            if steps >= MAX_SHRINK_ITERS {
                break 'outer;
            }
            if let Err(m) = run_prop(prop, &cand) {
                cur = cand;
                msg = m;
                continue 'outer; // restart from the simpler failure
            }
        }
        break; // no candidate fails: `cur` is locally minimal
    }
    (cur, msg, steps)
}

/// Fail the surrounding property with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fail the surrounding property unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            ));
        }
    }};
}

/// Declare property tests: each `fn` becomes a `#[test]` whose arguments
/// are drawn from the given strategies. An optional leading `cases = N;`
/// applies to every property in the block.
///
/// ```
/// use pcm_types::{propcheck, prop_assert, prop_assert_eq};
/// use pcm_types::propcheck::{any_u64, vec_of};
///
/// propcheck! {
///     /// XOR is self-inverse.
///     fn xor_roundtrip(a in any_u64(), b in any_u64()) {
///         prop_assert_eq!(a ^ b ^ b, a);
///     }
///
///     fn sum_fits(v in vec_of(0u32..=33, 1..=8)) {
///         prop_assert!(v.iter().sum::<u32>() <= 33 * 8);
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! propcheck {
    (cases = $cases:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::propcheck::check(
                    stringify!($name),
                    $cases,
                    ($($strat,)+),
                    |__case| {
                        let ($($arg,)+) = __case.clone();
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::propcheck! { cases = $crate::propcheck::DEFAULT_CASES; $($(#[$meta])* fn $name($($arg in $strat),+) $body)+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check("always_true", 100, any_u64(), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 100);
    }

    #[test]
    fn failing_property_panics_with_minimal_case() {
        let result = catch_unwind(|| {
            check("gt_hundred", 200, 0u32..=1_000, |&v| {
                if v > 100 {
                    Err(format!("{v} too big"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = match result {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .expect("panic payload is String"),
            Ok(()) => panic!("property should have failed"),
        };
        // The minimal failing value for `v > 100` is exactly 101.
        assert!(msg.contains("minimal input: 101"), "{msg}");
        assert!(msg.contains("falsified"), "{msg}");
    }

    #[test]
    fn shrinks_vectors_to_minimal_length() {
        let result = catch_unwind(|| {
            check(
                "has_big_elem",
                500,
                vec_of(0u32..=50, 0..=8),
                |v: &Vec<u32>| {
                    if v.iter().any(|&x| x >= 40) {
                        Err("contains big element".into())
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        // Minimal counterexample: a single-element vector [40].
        assert!(msg.contains("minimal input: [40]"), "{msg}");
    }

    #[test]
    fn panics_inside_property_are_caught_and_shrunk() {
        let result = catch_unwind(|| {
            check("panicky", 100, 0u64..=1_000, |&v| {
                assert!(v < 500, "boom at {v}");
                Ok(())
            });
        });
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().cloned().unwrap(),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("minimal input: 500"), "{msg}");
        assert!(msg.contains("panic: boom at 500"), "{msg}");
    }

    #[test]
    fn union_and_one_of_stay_in_domain() {
        let strat = union(vec![
            Box::new(just(0u64)) as Box<dyn Strategy<Value = u64>>,
            Box::new(just(u64::MAX)),
            Box::new(masked_u64(0xFF)),
        ]);
        let mut rng = SplitMix64::new(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 0 || v == u64::MAX || v <= 0xFF);
        }
        let choice = one_of(&[128u32, 64, 48]);
        for _ in 0..50 {
            assert!([128, 64, 48].contains(&choice.generate(&mut rng)));
        }
        assert_eq!(choice.shrink(&48), vec![128, 64]);
    }

    #[test]
    fn range_shrink_stays_in_bounds() {
        let strat = 5u32..=100;
        for cand in strat.shrink(&73) {
            assert!((5..=100).contains(&cand));
        }
        assert!(strat.shrink(&5).is_empty());
    }

    #[test]
    fn deterministic_per_name() {
        let collect = |name: &str| {
            let mut rng = SplitMix64::new(fxhash(name) ^ 0x7e72_15c0_ffee);
            (0..4)
                .map(|_| any_u64().generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect("alpha"), collect("alpha"));
        assert_ne!(collect("alpha"), collect("beta"));
    }

    // The macro itself, exercised end to end.
    crate::propcheck! {
        cases = 64;
        /// Masked generation never escapes the mask.
        fn masked_stays_masked(v in masked_u64(0xF0F0)) {
            prop_assert_eq!(v & !0xF0F0, 0);
        }

        fn tuple_destructuring(a in 1u32..=8, b in any_bool(), v in vec_of(0u32..=3, 2)) {
            prop_assert!((1..=8).contains(&a));
            prop_assert!(v.len() == 2);
            let _ = b;
        }
    }
}
