//! In-repo pseudo-random number generation (no external crates).
//!
//! Two small, well-studied generators:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. One multiply-xor
//!   chain per output, passes BigCrush, and is the standard way to expand
//!   a single `u64` seed into a full generator state.
//! * [`Xoshiro256StarStar`] — Blackman/Vigna's xoshiro256**, the
//!   general-purpose generator behind `rand`'s `SmallRng`. 256 bits of
//!   state, period 2^256 − 1, seeded here through SplitMix64 exactly as
//!   its authors recommend.
//!
//! The [`Rng`] trait mirrors the small slice of the `rand` API this
//! workspace actually uses (`gen`, `gen_bool`, `gen_range`), so swapping
//! the dependency out left call sites almost untouched. Both generators
//! are deterministic: the same seed always produces the same stream, on
//! every platform, forever — a hard requirement for reproducible
//! simulation traces.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: one 64-bit state word advanced by a Weyl sequence.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: 4×64-bit state, the `rand` crate's `SmallRng` algorithm.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed through SplitMix64, as the xoshiro authors specify. A zero
    /// seed is fine (SplitMix64 never emits four zero words in a row).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// The workspace's small-and-fast generator (xoshiro256**).
pub type SmallRng = Xoshiro256StarStar;
/// Alias kept for call-site compatibility with the old `rand::StdRng`
/// usage; statistically interchangeable for simulation purposes.
pub type StdRng = Xoshiro256StarStar;

/// Values that can be drawn uniformly from an [`Rng`] (the `gen` method).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types that support uniform range sampling (`gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive on both ends).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The largest value strictly below `v` (for half-open ranges).
    fn pred(v: Self) -> Self;
}

/// Draw a `u64` uniformly from `[0, span]` by rejection sampling
/// (unbiased; expected retries < 1 for any span).
#[inline]
fn uniform_u64_to<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let n = span + 1;
    // Reject raw draws above the largest multiple of n, so `% n` is exact.
    let rem = (u64::MAX % n + 1) % n; // 2^64 mod n
    loop {
        let v = rng.next_u64();
        if rem == 0 || v < u64::MAX - rem + 1 {
            return v % n;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_u64_to(rng, span) as $t)
            }
            #[inline]
            fn pred(v: Self) -> Self { v - 1 }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

impl SampleUniform for i32 {
    #[inline]
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        debug_assert!(low <= high, "gen_range: empty range");
        let span = (high as i64 - low as i64) as u64;
        (low as i64 + uniform_u64_to(rng, span) as i64) as i32
    }
    #[inline]
    fn pred(v: Self) -> Self {
        v - 1
    }
}

/// Range arguments accepted by [`Rng::gen_range`] (`a..b` and `a..=b`).
pub trait IntoInclusive<T: SampleUniform> {
    /// Convert to inclusive `(low, high)` bounds.
    fn into_inclusive(self) -> (T, T);
}

impl<T: SampleUniform> IntoInclusive<T> for Range<T> {
    #[inline]
    fn into_inclusive(self) -> (T, T) {
        (self.start, T::pred(self.end))
    }
}

impl<T: SampleUniform> IntoInclusive<T> for RangeInclusive<T> {
    #[inline]
    fn into_inclusive(self) -> (T, T) {
        self.into_inner()
    }
}

/// The drawing interface: the `rand`-compatible subset the workspace uses.
pub trait Rng {
    /// Next raw 64-bit output (the only method generators must provide).
    fn next_u64(&mut self) -> u64;

    /// Draw a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        f64::sample(self) < p
    }

    /// Uniform draw from a `a..b` or `a..=b` range.
    #[inline]
    fn gen_range<T: SampleUniform, Rg: IntoInclusive<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        let (low, high) = range.into_inclusive();
        T::sample_inclusive(self, low, high)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl Rng for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c test vectors.
        let mut sm = SplitMix64::new(1234567);
        let first: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for seed 42 (state expanded through SplitMix64),
        // cross-checked against an independent implementation.
        let mut r = Xoshiro256StarStar::seed_from_u64(42);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                1546998764402558742,
                6990951692964543102,
                12544586762248559009
            ]
        );
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256StarStar::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256StarStar::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256StarStar::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SmallRng::seed_from_u64(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let x = r.gen_range(0..64);
            assert!((0..64).contains(&x));
        }
    }

    #[test]
    fn gen_range_uniformity() {
        let mut r = SmallRng::seed_from_u64(10);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_300..10_700).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.2)).count();
        assert!((19_000..21_000).contains(&hits), "{hits}");
        assert_eq!((0..100).filter(|_| r.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| r.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn u8_u32_bool_draw() {
        let mut r = SmallRng::seed_from_u64(12);
        let _: u8 = r.gen();
        let _: u32 = r.gen();
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&trues));
    }
}
