//! Deterministic-iteration adapters for hash-ordered containers.
//!
//! `HashMap`/`HashSet` iteration order is arbitrary, which is fine for
//! lookups but poison for anything order-sensitive in a simulator that
//! promises bit-for-bit reproducibility. The `no-unordered-iteration` lint
//! (see `pcm-lint`) forbids direct iteration in deterministic crates;
//! these adapters are the sanctioned path: they snapshot the container
//! into a `Vec` sorted by key, so the traversal order is a function of the
//! data alone.
//!
//! The copy is O(n log n) — deliberate. Hash containers on hot paths
//! should only ever be *probed*; when code needs to walk one, it is in a
//! reporting/rollup path where the clone is noise and the determinism is
//! the point.

use std::collections::{HashMap, HashSet};

/// Key-sorted snapshot of a map's entries.
///
/// ```
/// use std::collections::HashMap;
/// let m: HashMap<u32, &str> = [(2, "b"), (1, "a")].into_iter().collect();
/// let entries = pcm_types::sorted_entries(&m);
/// assert_eq!(entries, vec![(&1, &"a"), (&2, &"b")]);
/// ```
pub fn sorted_entries<K: Ord, V>(map: &HashMap<K, V>) -> Vec<(&K, &V)> {
    let mut v: Vec<(&K, &V)> = map.iter().collect();
    v.sort_unstable_by(|a, b| a.0.cmp(b.0));
    v
}

/// Sorted snapshot of a map's keys.
pub fn sorted_keys<K: Ord + Clone, V>(map: &HashMap<K, V>) -> Vec<K> {
    let mut v: Vec<K> = map.keys().cloned().collect();
    v.sort_unstable();
    v
}

/// Sorted snapshot of a set's values.
pub fn sorted_values<T: Ord + Clone>(set: &HashSet<T>) -> Vec<T> {
    let mut v: Vec<T> = set.iter().cloned().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_sorted_by_key() {
        let m: HashMap<u64, u64> = (0..100).map(|i| (i * 7919 % 101, i)).collect();
        let e = sorted_entries(&m);
        assert_eq!(e.len(), m.len());
        assert!(e.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn keys_and_values_sorted() {
        let m: HashMap<u32, ()> = [(5, ()), (1, ()), (3, ())].into_iter().collect();
        assert_eq!(sorted_keys(&m), vec![1, 3, 5]);
        let s: HashSet<i32> = [-4, 9, 0].into_iter().collect();
        assert_eq!(sorted_values(&s), vec![-4, 0, 9]);
    }

    #[test]
    fn empty_containers() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(sorted_entries(&m).is_empty());
        assert!(sorted_keys(&m).is_empty());
        let s: HashSet<u8> = HashSet::new();
        assert!(sorted_values(&s).is_empty());
    }
}
