//! Physical-address decomposition.
//!
//! The controller interleaves consecutive cache lines across banks (line
//! interleaving maximizes bank-level parallelism for streaming traffic),
//! then across ranks, with the remaining bits forming the row/column within
//! a bank.

use crate::org::MemOrg;

/// A physical byte address.
pub type PhysAddr = u64;

/// A decoded physical address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// Rank index.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row within the bank (row-buffer granularity).
    pub row: u64,
    /// Cache-line column within the row.
    pub col: u32,
    /// Global cache-line index (address / line size).
    pub line: u64,
}

/// Address mapping: `line = addr / line_size`, then
/// `bank = line % banks`, `rank = (line / banks) % ranks`, and the rest
/// splits into row/col with `lines_per_row` columns per row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddrMap {
    org: MemOrg,
    /// Cache lines per row buffer (row size / line size).
    lines_per_row: u32,
}

impl AddrMap {
    /// Create a mapping with the given number of cache lines per row
    /// (row-buffer size = `lines_per_row × cache_line_bytes`).
    pub fn new(org: MemOrg, lines_per_row: u32) -> Result<Self, crate::PcmError> {
        org.validate()?;
        if lines_per_row == 0 || !lines_per_row.is_power_of_two() {
            return Err(crate::PcmError::config(
                "lines_per_row must be a non-zero power of two",
            ));
        }
        Ok(AddrMap { org, lines_per_row })
    }

    /// Default mapping: 4 KB rows (64 lines of 64 B).
    pub fn with_default_rows(org: MemOrg) -> Result<Self, crate::PcmError> {
        let lines_per_row = (4096 / org.cache_line_bytes).max(1);
        Self::new(org, lines_per_row)
    }

    /// The organization this map was built for.
    pub const fn org(&self) -> &MemOrg {
        &self.org
    }

    /// Row-buffer size in bytes.
    pub const fn row_bytes(&self) -> u32 {
        self.lines_per_row * self.org.cache_line_bytes
    }

    /// Decode a byte address (must be within capacity).
    pub fn decode(&self, addr: PhysAddr) -> Result<DecodedAddr, crate::PcmError> {
        if addr >= self.org.capacity_bytes {
            return Err(crate::PcmError::AddressOutOfRange {
                addr,
                capacity: self.org.capacity_bytes,
            });
        }
        let line = addr / self.org.cache_line_bytes as u64;
        let bank = (line % self.org.banks_per_rank as u64) as u32;
        let after_bank = line / self.org.banks_per_rank as u64;
        let rank = (after_bank % self.org.ranks as u64) as u32;
        let after_rank = after_bank / self.org.ranks as u64;
        let col = (after_rank % self.lines_per_row as u64) as u32;
        let row = after_rank / self.lines_per_row as u64;
        Ok(DecodedAddr {
            rank,
            bank,
            row,
            col,
            line,
        })
    }

    /// Encode rank/bank/row/col coordinates back into a byte address —
    /// the exact inverse of [`decode`][Self::decode]. The `line` field of
    /// the input is ignored; it is recomputed from the coordinates.
    pub fn encode(&self, d: &DecodedAddr) -> Result<PhysAddr, crate::PcmError> {
        if d.rank >= self.org.ranks
            || d.bank >= self.org.banks_per_rank
            || d.col >= self.lines_per_row
        {
            return Err(crate::PcmError::config(
                "encode: coordinate exceeds organization geometry",
            ));
        }
        let addr = d
            .row
            .checked_mul(self.lines_per_row as u64)
            .and_then(|v| v.checked_add(d.col as u64))
            .and_then(|v| v.checked_mul(self.org.ranks as u64))
            .and_then(|v| v.checked_add(d.rank as u64))
            .and_then(|v| v.checked_mul(self.org.banks_per_rank as u64))
            .and_then(|v| v.checked_add(d.bank as u64))
            .and_then(|v| v.checked_mul(self.org.cache_line_bytes as u64))
            .unwrap_or(u64::MAX);
        if addr >= self.org.capacity_bytes {
            return Err(crate::PcmError::AddressOutOfRange {
                addr,
                capacity: self.org.capacity_bytes,
            });
        }
        Ok(addr)
    }

    /// Align an address down to its cache-line base.
    pub const fn line_base(&self, addr: PhysAddr) -> PhysAddr {
        addr - addr % self.org.cache_line_bytes as u64
    }

    /// Flat bank identifier (rank-major) for indexing bank-state arrays.
    pub const fn flat_bank(&self, d: &DecodedAddr) -> usize {
        (d.rank * self.org.banks_per_rank + d.bank) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddrMap {
        AddrMap::with_default_rows(MemOrg::paper_baseline()).unwrap()
    }

    #[test]
    fn consecutive_lines_interleave_banks() {
        let m = map();
        for i in 0..16u64 {
            let d = m.decode(i * 64).unwrap();
            assert_eq!(d.bank, (i % 8) as u32);
            assert_eq!(d.rank, 0);
            assert_eq!(d.line, i);
        }
    }

    #[test]
    fn same_row_groups_lines() {
        let m = map();
        // Lines 0, 8, 16 … map to bank 0 with consecutive columns.
        let d0 = m.decode(0).unwrap();
        let d1 = m.decode(8 * 64).unwrap();
        assert_eq!(d0.bank, d1.bank);
        assert_eq!(d0.row, d1.row);
        assert_eq!(d1.col, d0.col + 1);
        // 64 columns per 4 KB row → line 8*64 jumps a row.
        let d_far = m.decode(8 * 64 * 64).unwrap();
        assert_eq!(d_far.bank, 0);
        assert_eq!(d_far.row, d0.row + 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let m = map();
        assert!(m.decode(4 << 30).is_err());
        assert!(m.decode((4 << 30) - 64).is_ok());
    }

    #[test]
    fn line_base_alignment() {
        let m = map();
        assert_eq!(m.line_base(0), 0);
        assert_eq!(m.line_base(63), 0);
        assert_eq!(m.line_base(64), 64);
        assert_eq!(m.line_base(130), 128);
    }

    #[test]
    fn decode_is_injective_on_a_window() {
        let m = map();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let d = m.decode(i * 64).unwrap();
            assert!(
                seen.insert((d.rank, d.bank, d.row, d.col)),
                "collision at line {i}"
            );
        }
    }

    #[test]
    fn rejects_bad_lines_per_row() {
        assert!(AddrMap::new(MemOrg::paper_baseline(), 0).is_err());
        assert!(AddrMap::new(MemOrg::paper_baseline(), 3).is_err());
    }

    #[test]
    fn encode_inverts_decode_baseline() {
        let m = map();
        for i in 0..4096u64 {
            let addr = i * 64;
            let d = m.decode(addr).unwrap();
            assert_eq!(m.encode(&d).unwrap(), addr);
        }
    }

    #[test]
    fn encode_rejects_bad_coordinates() {
        let m = map();
        let mut d = m.decode(0).unwrap();
        d.rank = 1; // baseline has a single rank
        assert!(m.encode(&d).is_err());
        let mut d = m.decode(0).unwrap();
        d.bank = 8;
        assert!(m.encode(&d).is_err());
        let mut d = m.decode(0).unwrap();
        d.row = u64::MAX / 2; // far past capacity
        assert!(m.encode(&d).is_err());
    }

    crate::propcheck! {
        /// decode → encode is the identity for every line-aligned address,
        /// across all rank/bank/row-width combinations.
        fn decode_encode_roundtrip(
            rank_bits in 0u32..=3,
            bank_bits in 0u32..=4,
            row_bits in 0u32..=3,
            line in 0u64..1u64 << 20
        ) {
            let org = MemOrg {
                ranks: 1 << rank_bits,
                banks_per_rank: 1 << bank_bits,
                capacity_bytes: 1 << 30,
                ..MemOrg::paper_baseline()
            };
            let m = AddrMap::new(org, 1 << (row_bits + 3)).unwrap();
            let addr = (line * 64) % org.capacity_bytes;
            let d = m.decode(addr).unwrap();
            crate::prop_assert!(d.rank < org.ranks && d.bank < org.banks_per_rank);
            crate::prop_assert_eq!(m.encode(&d).unwrap(), addr);
        }

        /// encode → decode recovers the coordinates for every in-range
        /// (rank, bank, row, col) tuple.
        fn encode_decode_roundtrip(
            rank_bits in 0u32..=3,
            bank_bits in 0u32..=4,
            row in 0u64..256,
            rank in 0u32..8,
            bank in 0u32..16,
            col in 0u32..8
        ) {
            let org = MemOrg {
                ranks: 1 << rank_bits,
                banks_per_rank: 1 << bank_bits,
                capacity_bytes: 1 << 30,
                ..MemOrg::paper_baseline()
            };
            let m = AddrMap::new(org, 8).unwrap();
            let d = DecodedAddr {
                rank: rank % org.ranks,
                bank: bank % org.banks_per_rank,
                row,
                col,
                line: 0,
            };
            let addr = m.encode(&d).unwrap();
            let back = m.decode(addr).unwrap();
            crate::prop_assert_eq!(back.rank, d.rank);
            crate::prop_assert_eq!(back.bank, d.bank);
            crate::prop_assert_eq!(back.row, d.row);
            crate::prop_assert_eq!(back.col, d.col);
        }
    }
}
