//! Picosecond-resolution simulation time.
//!
//! The simulator orders events by timestamp, so timestamps must be exact.
//! All PCM timings in the paper are integral nanoseconds (READ 50 ns,
//! RESET 53 ns, SET 430 ns) and clocks are 2 GHz / 400 MHz, so picoseconds
//! as `u64` represent every quantity exactly while still covering ~213 days
//! of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A duration or absolute timestamp in picoseconds.
///
/// `Ps` is used for both points in time and durations; the simulator's
/// origin is `Ps::ZERO`.
///
/// ```
/// use pcm_types::Ps;
/// let t_set = Ps::from_ns(430);
/// let t_reset = Ps::from_ns(53);
/// assert_eq!(t_set.div_duration(t_reset), 8); // the paper's K
/// assert_eq!(Ps::from_cycles(41, 400), Ps(102_500)); // 41 cycles @ 400 MHz
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ps(pub u64);

impl Ps {
    /// Zero duration / simulation origin.
    pub const ZERO: Ps = Ps(0);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Ps(ns * 1_000)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Ps(us * 1_000_000)
    }

    /// Construct from a cycle count at a clock frequency in MHz.
    ///
    /// Panics if the frequency does not divide 1 ps exactly enough to
    /// matter; in practice 2000 MHz → 500 ps and 400 MHz → 2500 ps are exact.
    pub const fn from_cycles(cycles: u64, freq_mhz: u64) -> Self {
        Ps(cycles * 1_000_000 / freq_mhz)
    }

    /// Value in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds, rounding down.
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in (possibly fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Number of whole clock cycles this duration spans at `freq_mhz`.
    pub const fn cycles_at(self, freq_mhz: u64) -> u64 {
        self.0 * freq_mhz / 1_000_000
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    pub const fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }

    /// Integer division of two durations (how many times `rhs` fits).
    pub const fn div_duration(self, rhs: Ps) -> u64 {
        self.0 / rhs.0
    }

    /// `self / rhs` rounded up; used for "how many RESET slots cover a SET".
    pub const fn div_ceil_duration(self, rhs: Ps) -> u64 {
        self.0.div_ceil(rhs.0)
    }

    /// Larger of two times.
    pub fn max(self, other: Ps) -> Ps {
        Ps(self.0.max(other.0))
    }

    /// Smaller of two times.
    pub fn min(self, other: Ps) -> Ps {
        Ps(self.0.min(other.0))
    }
}

impl Add for Ps {
    type Output = Ps;
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl SubAssign for Ps {
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Div<u64> for Ps {
    type Output = Ps;
    fn div(self, rhs: u64) -> Ps {
        Ps(self.0 / rhs)
    }
}

impl Rem<Ps> for Ps {
    type Output = Ps;
    fn rem(self, rhs: Ps) -> Ps {
        Ps(self.0 % rhs.0)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        iter.fold(Ps::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 1_000 == 0 {
            write!(f, "{}ns", self.0 / 1_000)
        } else {
            write!(f, "{:.3}ns", self.as_ns_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_roundtrip() {
        assert_eq!(Ps::from_ns(430).as_ns(), 430);
        assert_eq!(Ps::from_ns(430).as_ps(), 430_000);
    }

    #[test]
    fn cycles_exact_for_paper_clocks() {
        // 2 GHz CPU: 1 cycle = 500 ps.
        assert_eq!(Ps::from_cycles(1, 2_000).as_ps(), 500);
        // 400 MHz memory bus: 1 cycle = 2.5 ns.
        assert_eq!(Ps::from_cycles(1, 400).as_ps(), 2_500);
        // The paper's measured analysis overhead: 41 cycles @ 400 MHz.
        assert_eq!(Ps::from_cycles(41, 400).as_ps(), 102_500);
    }

    #[test]
    fn cycles_at_inverts_from_cycles() {
        for c in [0u64, 1, 7, 41, 1000] {
            assert_eq!(Ps::from_cycles(c, 400).cycles_at(400), c);
            assert_eq!(Ps::from_cycles(c, 2_000).cycles_at(2_000), c);
        }
    }

    #[test]
    fn arithmetic() {
        let a = Ps::from_ns(50);
        let b = Ps::from_ns(53);
        assert_eq!(a + b, Ps::from_ns(103));
        assert_eq!(b - a, Ps::from_ns(3));
        assert_eq!(a * 8, Ps::from_ns(400));
        assert_eq!(Ps::from_ns(430).div_duration(Ps::from_ns(53)), 8);
        assert_eq!(Ps::from_ns(430).div_ceil_duration(Ps::from_ns(53)), 9);
        assert_eq!(a.saturating_sub(b), Ps::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Ps::from_ns(50).to_string(), "50ns");
        assert_eq!(Ps(2_500).to_string(), "2.500ns");
    }

    #[test]
    fn sum_of_durations() {
        let total: Ps = [Ps::from_ns(1), Ps::from_ns(2), Ps::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Ps::from_ns(6));
    }
}
