//! WIRE-style restricted coset coding (a generalization of [`crate::flip`]).
//!
//! Flip-N-Write offers each data unit exactly two encodings: the plain
//! data or its full inversion. Restricted coset coding widens that choice
//! to a *small codebook* of XOR masks ("coset rows"); the encoder picks,
//! per line, the row whose per-unit encodings minimize the
//! `num_sets`-weighted write cost, then records the row alongside the
//! per-unit flip tags so reads can undo the mask.
//!
//! ## Tag layout
//!
//! The per-line `flips` word already carries one flip bit per data unit in
//! its low bits (at most [`crate::MAX_UNITS_PER_LINE`] = 32 of them). The coset
//! row index lives in the top bits, above [`COSET_ROW_SHIFT`]:
//!
//! ```text
//!  31 30 29 ............................ 0
//! [row ][        per-unit flip bits      ]
//! ```
//!
//! Row 0's mask is the full inversion, so a flips word with zero row bits
//! decodes exactly like classic Flip-N-Write ([`crate::flip_decode`]) —
//! every pre-coset stored line remains valid. Lines with more than
//! [`COSET_ROW_SHIFT`] data units have no spare tag bits and are
//! restricted to row 0 (see [`coset_rows_available`]).

use crate::data::DataUnit;

/// Number of XOR masks in the restricted codebook.
pub const COSET_ROWS: usize = 4;

/// Bit position where the coset row index starts inside a `flips` word.
/// Rows above 0 are only representable when the line has at most this
/// many data units.
pub const COSET_ROW_SHIFT: u32 = 30;

/// The codebook: per-unit XOR masks, indexed by coset row.
///
/// Row 0 is the full inversion (classic Flip-N-Write); rows 1–3 are the
/// half-word and alternating masks that cheaply capture common partial
/// update shapes (pointer-heavy upper halves, counters in the lower half,
/// striped bitmaps).
pub const COSET_PATTERNS: [DataUnit; COSET_ROWS] = [
    !0,
    0xFFFF_FFFF_0000_0000,
    0x0000_0000_FFFF_FFFF,
    0x5555_5555_5555_5555,
];

/// Extract the coset row index (0..[`COSET_ROWS`]) from a `flips` word.
pub const fn coset_row(flips: u32) -> usize {
    (flips >> COSET_ROW_SHIFT) as usize
}

/// Combine per-unit flip bits with a coset row index into one tag word.
///
/// # Panics
/// If `row >= COSET_ROWS` or the unit bits collide with the row field.
pub const fn with_coset_row(unit_flips: u32, row: usize) -> u32 {
    assert!(row < COSET_ROWS, "coset row out of range");
    assert!(
        unit_flips >> COSET_ROW_SHIFT == 0,
        "unit flip bits collide with the coset row field"
    );
    unit_flips | (row as u32) << COSET_ROW_SHIFT
}

/// The per-unit flip bits of a tag word, with the row field stripped.
pub const fn coset_unit_flips(flips: u32) -> u32 {
    flips & ((1 << COSET_ROW_SHIFT) - 1)
}

/// Can lines of `num_units` data units use rows above 0?
///
/// The row field occupies flip bits [`COSET_ROW_SHIFT`]`..32`, so a line
/// whose per-unit bits reach into it must stay on row 0.
pub const fn coset_rows_available(num_units: usize) -> bool {
    num_units <= COSET_ROW_SHIFT as usize
}

/// Decode one stored unit back to logical data under a coset row.
///
/// `coset_decode(s, f, 0)` ≡ [`crate::flip_decode`]`(s, f)`.
///
/// ```
/// use pcm_types::coset::{coset_decode, COSET_PATTERNS};
/// let logical = 0xDEAD_BEEF_u64;
/// for (row, mask) in COSET_PATTERNS.iter().enumerate() {
///     assert_eq!(coset_decode(logical ^ mask, true, row), logical);
///     assert_eq!(coset_decode(logical, false, row), logical);
/// }
/// ```
pub const fn coset_decode(stored: DataUnit, flip: bool, row: usize) -> DataUnit {
    if flip {
        stored ^ COSET_PATTERNS[row]
    } else {
        stored
    }
}

/// Decode unit `i` of a line given its full tag word and the line's unit
/// count. Lines too long for a row field ([`coset_rows_available`] false)
/// treat every tag bit as a per-unit flip on row 0, which is exactly the
/// classic Flip-N-Write layout.
pub const fn coset_decode_unit(
    stored: DataUnit,
    flips: u32,
    i: usize,
    num_units: usize,
) -> DataUnit {
    if coset_rows_available(num_units) {
        coset_decode(
            stored,
            coset_unit_flips(flips) & (1 << i) != 0,
            coset_row(flips),
        )
    } else {
        coset_decode(stored, flips & (1 << i) != 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flip::flip_decode;
    use crate::propcheck::{any_bool, any_u64};
    use crate::{prop_assert_eq, propcheck};

    #[test]
    fn row_zero_is_classic_flip_n_write() {
        assert_eq!(COSET_PATTERNS[0], !0u64);
        for stored in [0u64, 5, u64::MAX, 0xF0F0] {
            for flip in [false, true] {
                assert_eq!(coset_decode(stored, flip, 0), flip_decode(stored, flip));
            }
        }
    }

    #[test]
    fn tag_word_packs_and_unpacks() {
        for row in 0..COSET_ROWS {
            let tag = with_coset_row(0b1010_1101, row);
            assert_eq!(coset_row(tag), row);
            assert_eq!(coset_unit_flips(tag), 0b1010_1101);
        }
        // Legacy words (no row bits) are row 0 with identical unit bits.
        assert_eq!(coset_row(0xFF), 0);
        assert_eq!(coset_unit_flips(0xFF), 0xFF);
    }

    #[test]
    fn rows_available_only_with_spare_tag_bits() {
        assert!(coset_rows_available(8));
        assert!(coset_rows_available(30));
        assert!(!coset_rows_available(31));
        assert!(!coset_rows_available(32));
    }

    #[test]
    fn patterns_are_distinct_and_row0_total() {
        for (a, &pa) in COSET_PATTERNS.iter().enumerate() {
            for &pb in &COSET_PATTERNS[a + 1..] {
                assert_ne!(pa, pb);
            }
        }
        assert_eq!(COSET_PATTERNS[0].count_ones(), 64);
    }

    propcheck! {
        /// XOR masking is an involution: decode(encode(x)) = x on every row.
        fn decode_inverts_encode(new in any_u64(), flip in any_bool(), row in 0usize..COSET_ROWS) {
            let stored = if flip { new ^ COSET_PATTERNS[row] } else { new };
            prop_assert_eq!(coset_decode(stored, flip, row), new);
        }

        /// Unit-indexed decode agrees with the scalar decode.
        fn unit_decode_matches(stored in any_u64(), unit_flips in 0u32..256, row in 0usize..COSET_ROWS, i in 0usize..8) {
            let tag = with_coset_row(unit_flips, row);
            let want = coset_decode(stored, unit_flips & (1 << i) != 0, row);
            prop_assert_eq!(coset_decode_unit(stored, tag, i, 8), want);
        }

        /// On lines too long for a row field every tag bit is a plain
        /// row-0 flip bit — including bits 30/31.
        fn long_lines_decode_as_flip_n_write(stored in any_u64(), flips in any_u64(), i in 0usize..32) {
            let flips = flips as u32;
            let want = coset_decode(stored, flips & (1 << i) != 0, 0);
            prop_assert_eq!(coset_decode_unit(stored, flips, i, 32), want);
        }
    }
}
