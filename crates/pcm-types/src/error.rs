//! Error type shared across the stack.

use std::fmt;

/// Errors produced by configuration validation and device/scheme operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PcmError {
    /// Invalid configuration (message explains the constraint violated).
    Config(String),
    /// An address fell outside the modeled memory.
    AddressOutOfRange {
        /// Offending address.
        addr: u64,
        /// Modeled capacity in bytes.
        capacity: u64,
    },
    /// A write schedule violated the instantaneous power budget.
    PowerBudgetViolation {
        /// Time slot (sub-write-unit index) where the violation occurred.
        slot: usize,
        /// Budget units demanded in that slot.
        demand: u32,
        /// Maximum allowed.
        budget: u32,
    },
    /// A schedule did not cover every pending bit-write.
    IncompleteSchedule(String),
    /// Data payload length did not match the configured line size.
    LineSizeMismatch {
        /// Expected line size in bytes.
        expected: usize,
        /// Actual payload length.
        actual: usize,
    },
}

impl PcmError {
    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        PcmError::Config(msg.into())
    }
}

impl fmt::Display for PcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcmError::Config(m) => write!(f, "invalid configuration: {m}"),
            PcmError::AddressOutOfRange { addr, capacity } => {
                write!(
                    f,
                    "address {addr:#x} outside modeled capacity {capacity:#x}"
                )
            }
            PcmError::PowerBudgetViolation {
                slot,
                demand,
                budget,
            } => write!(
                f,
                "power budget violated in sub-slot {slot}: demand {demand} > budget {budget}"
            ),
            PcmError::IncompleteSchedule(m) => write!(f, "incomplete schedule: {m}"),
            PcmError::LineSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "line size mismatch: expected {expected} bytes, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for PcmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PcmError::config("bad");
        assert_eq!(e.to_string(), "invalid configuration: bad");
        let e = PcmError::PowerBudgetViolation {
            slot: 3,
            demand: 140,
            budget: 128,
        };
        assert!(e.to_string().contains("sub-slot 3"));
        let e = PcmError::AddressOutOfRange {
            addr: 0x100,
            capacity: 0x80,
        };
        assert!(e.to_string().contains("0x100"));
    }
}
