//! Cache-line payloads and 64-bit data units.
//!
//! `LineData` is a fixed-capacity, stack-allocated buffer so that the
//! simulator's hot write path never allocates. Lines up to 256 B (IBM
//! zEnterprise) are supported.

use std::fmt;

/// Maximum supported cache-line size in bytes.
pub const MAX_LINE_BYTES: usize = 256;
/// Maximum number of 64-bit data units per line (256 B / 8 B).
pub const MAX_UNITS_PER_LINE: usize = MAX_LINE_BYTES / 8;

/// One data unit: the 64-bit granularity at which write schemes count
/// SET/RESET demand (one row across the 4 × X16 chips of a bank).
pub type DataUnit = u64;

/// A cache line's payload: `len` bytes, fixed capacity, no heap.
#[derive(Clone, Copy)]
pub struct LineData {
    buf: [u8; MAX_LINE_BYTES],
    len: usize,
}

impl LineData {
    /// An all-zero line of `len` bytes.
    ///
    /// # Panics
    /// If `len` exceeds [`MAX_LINE_BYTES`] or is not a multiple of 8.
    pub fn zeroed(len: usize) -> Self {
        assert!(len <= MAX_LINE_BYTES, "line length {len} exceeds capacity");
        assert!(len % 8 == 0, "line length must be a multiple of 8 bytes");
        LineData {
            buf: [0; MAX_LINE_BYTES],
            len,
        }
    }

    /// Construct from a byte slice.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut l = Self::zeroed(bytes.len());
        l.buf[..bytes.len()].copy_from_slice(bytes);
        l
    }

    /// Construct from 64-bit data units (little-endian byte order).
    pub fn from_units(units: &[DataUnit]) -> Self {
        let mut l = Self::zeroed(units.len() * 8);
        for (i, u) in units.iter().enumerate() {
            l.buf[i * 8..i * 8 + 8].copy_from_slice(&u.to_le_bytes());
        }
        l
    }

    /// Payload length in bytes.
    pub const fn len(&self) -> usize {
        self.len
    }

    /// True if the line has zero length.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-bit data units.
    pub const fn num_units(&self) -> usize {
        self.len / 8
    }

    /// Byte view of the payload.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// Mutable byte view of the payload.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.buf[..self.len]
    }

    /// Read data unit `i` (little-endian).
    pub fn unit(&self, i: usize) -> DataUnit {
        assert!(i < self.num_units(), "unit index {i} out of range");
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[i * 8..i * 8 + 8]);
        u64::from_le_bytes(b)
    }

    /// Write data unit `i`.
    pub fn set_unit(&mut self, i: usize, v: DataUnit) {
        assert!(i < self.num_units(), "unit index {i} out of range");
        self.buf[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Iterator over the data units.
    pub fn units(&self) -> impl Iterator<Item = DataUnit> + '_ {
        (0..self.num_units()).map(move |i| self.unit(i))
    }

    /// Bitwise NOT of every payload bit (data inversion).
    pub fn inverted(&self) -> LineData {
        let mut out = *self;
        for b in out.as_bytes_mut() {
            *b = !*b;
        }
        out
    }

    /// XOR unit `i` with a mask (used by tests and fault injection).
    pub fn xor_unit(&mut self, i: usize, mask: u64) {
        let v = self.unit(i);
        self.set_unit(i, v ^ mask);
    }

    /// Total number of '1' bits in the payload.
    pub fn popcount(&self) -> u32 {
        self.units().map(|u| u.count_ones()).sum()
    }
}

impl PartialEq for LineData {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for LineData {}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineData[{}B;", self.len)?;
        for u in self.units().take(4) {
            write!(f, " {u:016x}")?;
        }
        if self.num_units() > 4 {
            write!(f, " …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundtrip() {
        let mut l = LineData::zeroed(64);
        assert_eq!(l.num_units(), 8);
        l.set_unit(3, 0xDEAD_BEEF_0123_4567);
        assert_eq!(l.unit(3), 0xDEAD_BEEF_0123_4567);
        assert_eq!(l.unit(2), 0);
    }

    #[test]
    fn from_units_roundtrip() {
        let units = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let l = LineData::from_units(&units);
        assert_eq!(l.units().collect::<Vec<_>>(), units);
        let l2 = LineData::from_bytes(l.as_bytes());
        assert_eq!(l, l2);
    }

    #[test]
    fn inversion_is_involutive() {
        let l = LineData::from_units(&[0xFF00_FF00_1234_5678; 8]);
        assert_eq!(l.inverted().inverted(), l);
        assert_eq!(l.popcount() + l.inverted().popcount(), 64 * 8);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_length_rejected() {
        let _ = LineData::zeroed(63);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversize_rejected() {
        let _ = LineData::zeroed(512);
    }

    #[test]
    fn xor_and_popcount() {
        let mut l = LineData::zeroed(64);
        l.xor_unit(0, 0b1011);
        assert_eq!(l.popcount(), 3);
        l.xor_unit(0, 0b0011);
        assert_eq!(l.popcount(), 1);
    }

    #[test]
    fn supports_256_byte_lines() {
        let l = LineData::zeroed(256);
        assert_eq!(l.num_units(), 32);
    }
}
