//! SET/RESET transition counting.
//!
//! Writing `new` over `old` requires:
//! * a **SET** for every bit that goes `0 → 1` (`new & !old`),
//! * a **RESET** for every bit that goes `1 → 0` (`old & !new`),
//! * nothing for unchanged bits (data-comparison write).

use crate::data::{DataUnit, LineData};

/// The bit-transition masks between an old and a new data unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Transitions {
    /// Bits that must be SET (`0 → 1`).
    pub set_mask: DataUnit,
    /// Bits that must be RESET (`1 → 0`).
    pub reset_mask: DataUnit,
}

impl Transitions {
    /// Number of SET bit-writes.
    pub const fn num_sets(&self) -> u32 {
        self.set_mask.count_ones()
    }

    /// Number of RESET bit-writes.
    pub const fn num_resets(&self) -> u32 {
        self.reset_mask.count_ones()
    }

    /// Total changed bits (Hamming distance).
    pub const fn num_changed(&self) -> u32 {
        self.num_sets() + self.num_resets()
    }

    /// True if nothing changes.
    pub const fn is_empty(&self) -> bool {
        self.set_mask == 0 && self.reset_mask == 0
    }
}

/// Compute the transitions required to turn `old` into `new`.
///
/// ```
/// let t = pcm_types::transitions(0b1100, 0b1010);
/// assert_eq!(t.num_sets(), 1);   // bit 1: 0 → 1
/// assert_eq!(t.num_resets(), 1); // bit 2: 1 → 0
/// ```
pub const fn transitions(old: DataUnit, new: DataUnit) -> Transitions {
    Transitions {
        set_mask: new & !old,
        reset_mask: old & !new,
    }
}

/// Hamming distance between two 64-bit units.
pub const fn hamming_unit(a: DataUnit, b: DataUnit) -> u32 {
    (a ^ b).count_ones()
}

/// Hamming distance between two equal-length lines.
///
/// # Panics
/// If the lines differ in length.
pub fn hamming(a: &LineData, b: &LineData) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming over unequal line lengths");
    a.units()
        .zip(b.units())
        .map(|(x, y)| hamming_unit(x, y))
        .sum()
}

/// Per-unit transitions for a whole line.
///
/// # Panics
/// If the lines differ in length.
pub fn line_transitions(old: &LineData, new: &LineData) -> Vec<Transitions> {
    assert_eq!(
        old.len(),
        new.len(),
        "transitions over unequal line lengths"
    );
    old.units()
        .zip(new.units())
        .map(|(o, n)| transitions(o, n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propcheck::any_u64;
    use crate::{prop_assert_eq, propcheck};

    #[test]
    fn simple_transitions() {
        let t = transitions(0b1100, 0b1010);
        assert_eq!(t.set_mask, 0b0010);
        assert_eq!(t.reset_mask, 0b0100);
        assert_eq!(t.num_sets(), 1);
        assert_eq!(t.num_resets(), 1);
        assert_eq!(t.num_changed(), 2);
    }

    #[test]
    fn identical_units_need_nothing() {
        let t = transitions(0xABCD, 0xABCD);
        assert!(t.is_empty());
    }

    #[test]
    fn hamming_over_lines() {
        let a = LineData::from_units(&[0, 0, 0, 0, 0, 0, 0, 0]);
        let b = LineData::from_units(&[1, 3, 0, 0, 0, 0, 0, 7]);
        assert_eq!(hamming(&a, &b), 1 + 2 + 3);
    }

    propcheck! {
        fn masks_are_disjoint_and_cover_xor(old in any_u64(), new in any_u64()) {
            let t = transitions(old, new);
            prop_assert_eq!(t.set_mask & t.reset_mask, 0);
            prop_assert_eq!(t.set_mask | t.reset_mask, old ^ new);
            prop_assert_eq!(t.num_changed(), hamming_unit(old, new));
        }

        fn applying_transitions_yields_new(old in any_u64(), new in any_u64()) {
            let t = transitions(old, new);
            let result = (old | t.set_mask) & !t.reset_mask;
            prop_assert_eq!(result, new);
        }

        fn transitions_reverse_swaps_roles(old in any_u64(), new in any_u64()) {
            let fwd = transitions(old, new);
            let rev = transitions(new, old);
            prop_assert_eq!(fwd.set_mask, rev.reset_mask);
            prop_assert_eq!(fwd.reset_mask, rev.set_mask);
        }
    }
}
