//! Memory organization: how cache lines decompose into write units and
//! data units, and how banks/ranks are laid out (Fig. 2 of the paper).

/// Organization of the PCM main memory.
///
/// Defaults follow Table II: 4 GB single-rank SLC PCM, 8 banks, 4 × X16
/// chips per bank (8 B write unit per bank), 64 B cache lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemOrg {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of ranks.
    pub ranks: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// PCM chips composing one bank (matching the data-bus width).
    pub chips_per_bank: u32,
    /// Write unit size per chip, in bits (X16 → 16, X8 → 8, mobile X4/X2).
    pub write_unit_bits_per_chip: u32,
    /// Last-level cache line size in bytes (64 typical; 128 POWER7, 256 z).
    pub cache_line_bytes: u32,
    /// Data-unit width in bits — the granularity the write schemes count
    /// SET/RESET demand at (64 in the paper).
    pub data_unit_bits: u32,
    /// Independently addressable partitions inside one bank (PALP-style
    /// intra-bank parallelism; 1 = monolithic bank, the classic model).
    pub partitions_per_bank: u32,
}

impl Default for MemOrg {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl MemOrg {
    /// Table II baseline.
    pub const fn paper_baseline() -> Self {
        MemOrg {
            capacity_bytes: 4 << 30,
            ranks: 1,
            banks_per_rank: 8,
            chips_per_bank: 4,
            write_unit_bits_per_chip: 16,
            cache_line_bytes: 64,
            data_unit_bits: 64,
            partitions_per_bank: 4,
        }
    }

    /// Write-unit size per bank in bytes (8 B in the baseline).
    pub const fn write_unit_bytes(&self) -> u32 {
        self.chips_per_bank * self.write_unit_bits_per_chip / 8
    }

    /// Number of write units needed to cover one cache line
    /// (the conventional scheme's serial write count; 8 in the baseline).
    pub const fn write_units_per_line(&self) -> u32 {
        self.cache_line_bytes / self.write_unit_bytes()
    }

    /// Number of data units per cache line (8 × 64-bit in the baseline).
    pub const fn data_units_per_line(&self) -> u32 {
        self.cache_line_bytes * 8 / self.data_unit_bits
    }

    /// Total banks across all ranks.
    pub const fn total_banks(&self) -> u32 {
        self.ranks * self.banks_per_rank
    }

    /// Total number of cache lines in the memory.
    pub const fn total_lines(&self) -> u64 {
        self.capacity_bytes / self.cache_line_bytes as u64
    }

    /// Sanity checks on divisibility and ranges.
    pub fn validate(&self) -> Result<(), crate::PcmError> {
        let e = crate::PcmError::config;
        if self.ranks == 0 || self.banks_per_rank == 0 || self.chips_per_bank == 0 {
            return Err(e("ranks, banks and chips must be non-zero"));
        }
        if self.partitions_per_bank == 0 {
            return Err(e("partitions per bank must be non-zero"));
        }
        if !self.write_unit_bits_per_chip.is_power_of_two() || self.write_unit_bits_per_chip > 64 {
            return Err(e("write unit bits per chip must be a power of two ≤ 64"));
        }
        if !self.cache_line_bytes.is_power_of_two() {
            return Err(e("cache line size must be a power of two"));
        }
        if self.data_unit_bits != 64 && self.data_unit_bits != 32 {
            return Err(e("data unit width must be 32 or 64 bits"));
        }
        if self.cache_line_bytes * 8 % self.data_unit_bits != 0 {
            return Err(e("cache line must be a whole number of data units"));
        }
        if self.cache_line_bytes % self.write_unit_bytes() != 0 {
            return Err(e("cache line must be a whole number of write units"));
        }
        if self.capacity_bytes % self.cache_line_bytes as u64 != 0 {
            return Err(e("capacity must be a whole number of cache lines"));
        }
        if self.data_units_per_line() as usize > crate::data::MAX_UNITS_PER_LINE {
            return Err(e("too many data units per line for fixed buffers"));
        }
        if self.cache_line_bytes as usize > crate::data::MAX_LINE_BYTES {
            return Err(e("cache line exceeds LineData capacity"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let o = MemOrg::paper_baseline();
        assert_eq!(o.write_unit_bytes(), 8, "8 B write unit per bank");
        assert_eq!(o.write_units_per_line(), 8, "64/8 = 8 write units per line");
        assert_eq!(o.data_units_per_line(), 8, "8 × 64-bit data units");
        assert_eq!(o.total_banks(), 8);
        assert_eq!(o.partitions_per_bank, 4, "PALP-style 4-partition banks");
        assert!(o.validate().is_ok());
    }

    #[test]
    fn power7_line() {
        let o = MemOrg {
            cache_line_bytes: 128,
            ..MemOrg::paper_baseline()
        };
        assert_eq!(o.write_units_per_line(), 16);
        assert_eq!(o.data_units_per_line(), 16);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn mobile_x4() {
        let o = MemOrg {
            write_unit_bits_per_chip: 4,
            ..MemOrg::paper_baseline()
        };
        assert_eq!(o.write_unit_bytes(), 2);
        assert_eq!(o.write_units_per_line(), 32);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let base = MemOrg::paper_baseline();
        assert!(MemOrg { ranks: 0, ..base }.validate().is_err());
        assert!(MemOrg {
            write_unit_bits_per_chip: 12,
            ..base
        }
        .validate()
        .is_err());
        assert!(MemOrg {
            cache_line_bytes: 96,
            ..base
        }
        .validate()
        .is_err());
        assert!(MemOrg {
            data_unit_bits: 48,
            ..base
        }
        .validate()
        .is_err());
        assert!(MemOrg {
            capacity_bytes: 100,
            ..base
        }
        .validate()
        .is_err());
        assert!(MemOrg {
            partitions_per_bank: 0,
            ..base
        }
        .validate()
        .is_err());
    }
}
