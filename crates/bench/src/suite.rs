//! The canonical perf suite behind the `BENCH_<n>.json` trajectory.
//!
//! A deliberately small, stable subset of the full bench targets — one
//! representative per subsystem the paper's performance story depends on —
//! so snapshots stay comparable across PRs:
//!
//! * `canonical/analysis/*` — the bit utilities and the Tetris
//!   analysis/packing hot path (the ROADMAP's bit-parallel rewrite must
//!   show up here).
//! * `canonical/schemes/*` — per-write plan construction for the encoding
//!   schemes with real planning work (PALP's slot packing, WIRE's coset
//!   row search); the controller calls these on every serviced write.
//! * `canonical/telemetry/*` — per-event sink dispatch cost (the "tracing
//!   off costs nothing" claim).
//! * `canonical/writecache/*` — the DRAM write-cache tier's per-store
//!   coalesce hit and background drain cycle.
//! * `canonical/lint/*` — the pcm-lint static analyzer over the real
//!   workspace: a cold parse (lex + item parse + every rule) against a
//!   warm cached scan (fingerprint hits + graph rules only), pinning the
//!   incremental-scan speedup the CI static-analysis job relies on.
//! * `canonical/system/*` — a quick end-to-end run under the fixed and
//!   adaptive scheduling policies (the sched-ablation surface).
//!
//! Bench ids are part of the snapshot schema: renaming one orphans its
//! baseline row (reported as `added`/`missing` by `bench-compare`), so
//! treat ids as API.

use crate::{Criterion, Throughput};
use pcm_memsim::SchedConfig;
use pcm_telemetry::{MemorySink, NullSink, OpKind, Telemetry, TelemetryEvent};
use pcm_types::{flip_encode, transitions, LineDemand, Ps, UnitDemand};
use pcm_workloads::WorkloadProfile;
use std::hint::black_box;
use tetris_experiments::{run_one, RunConfig, SchemeKind};
use tetris_write::{analyze, TetrisConfig};

/// Instructions per core for the system-level benches.
fn system_instructions(quick: bool) -> u64 {
    if quick {
        50_000
    } else {
        200_000
    }
}

/// Register the canonical suite on `c`. `quick` shrinks the system-run
/// size and sample counts for CI; micro benches are cheap either way.
pub fn canonical_suite(c: &mut Criterion, quick: bool) {
    let micro_samples = if quick { 10 } else { 20 };

    // --- analysis / packing hot path -----------------------------------
    let mut g = c.benchmark_group("canonical/analysis");
    g.sample_size(micro_samples);
    g.bench_function("transitions", |b| {
        b.iter(|| black_box(transitions(black_box(0xDEAD_BEEF), black_box(0xFEED_FACE))))
    });
    g.bench_function("flip_encode", |b| {
        b.iter(|| {
            black_box(flip_encode(
                black_box(0xAAAA),
                false,
                black_box(0x5555_5555),
            ))
        })
    });
    let cfg = TetrisConfig::paper_baseline();
    let demand = LineDemand::from_units(&[UnitDemand::new(7, 3); 8]);
    g.throughput(Throughput::Elements(8));
    g.bench_function("analyze_line", |b| {
        b.iter(|| black_box(analyze(black_box(&demand), &cfg).unwrap()))
    });
    g.finish();

    // --- scheme write planning -----------------------------------------
    {
        use pcm_schemes::{PalpWrite, SchemeConfig, WireWrite, WriteCtx, WriteScheme};
        use pcm_types::LineData;
        let scheme_cfg = SchemeConfig::paper_baseline();
        let old = LineData::from_units(&[0xDEAD_BEEF_0123_4567; 8]);
        let new = LineData::from_units(&[0xFEED_FACE_89AB_CDEF; 8]);
        let ctx = WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &scheme_cfg,
        };
        let mut g = c.benchmark_group("canonical/schemes");
        g.sample_size(micro_samples);
        g.bench_function("palp_plan", |b| {
            b.iter(|| black_box(PalpWrite.plan(black_box(&ctx))))
        });
        g.bench_function("wire_plan", |b| {
            b.iter(|| black_box(WireWrite.plan(black_box(&ctx))))
        });
        g.finish();
    }

    // --- telemetry per-event dispatch ----------------------------------
    let ev = TelemetryEvent::BankBusy {
        at: Ps(1_000),
        bank: 3,
        kind: OpKind::Write,
        until: Ps(501_000),
        lines: 4,
    };
    let mut g = c.benchmark_group("canonical/telemetry");
    g.sample_size(micro_samples);
    g.bench_function("null_sink_event", |b| {
        let mut sink: Box<dyn Telemetry> = Box::new(NullSink);
        b.iter(|| sink.record(black_box(&ev)))
    });
    g.bench_function("memory_sink_event", |b| {
        let mut sink: Box<dyn Telemetry> = Box::new(MemorySink::new());
        b.iter(|| sink.record(black_box(&ev)))
    });
    g.finish();

    // --- write-cache tier hot paths ------------------------------------
    {
        use pcm_memsim::{PolicySelect, WriteCache, WriteCacheConfig};
        let mut g = c.benchmark_group("canonical/writecache");
        g.sample_size(micro_samples);
        g.bench_function("write_cache_hit", |b| {
            // Steady-state coalescing: every write lands on a resident
            // dirty line, the tier's best case and the controller's
            // per-store fast path.
            let mut wc = WriteCache::new(WriteCacheConfig::with_frames(64, PolicySelect::Lru), 64)
                .expect("bench write-cache configuration is valid");
            for i in 0..64u64 {
                wc.write(i * 64);
            }
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 64;
                black_box(wc.write(black_box(i * 64)))
            })
        });
        g.bench_function("write_cache_drain", |b| {
            // Steady-state churn: admit one cold line, drain one victim —
            // the background-drain cycle under a full tier.
            let mut wc = WriteCache::new(WriteCacheConfig::with_frames(64, PolicySelect::Lru), 64)
                .expect("bench write-cache configuration is valid");
            let mut next = 0u64;
            b.iter(|| {
                next += 64;
                wc.write(next);
                black_box(wc.drain_one())
            })
        });
        g.finish();
    }

    // --- static-analysis scan: cold parse vs warm cached scan ----------
    {
        use pcm_lint::cache::Cache;
        use pcm_lint::workspace::{find_root, source_paths};
        let root = find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("bench runs inside the workspace");
        let sources: Vec<(String, String)> = source_paths(&root)
            .expect("workspace sources enumerate")
            .into_iter()
            .map(|(rel, abs)| (rel, std::fs::read_to_string(&abs).expect("source readable")))
            .collect();
        let ci = std::fs::read_to_string(root.join(".github/workflows/ci.yml")).ok();
        let warm_cache = pcm_lint::scan(&sources, ci.clone(), &Cache::empty(), 0).cache;
        let mut g = c.benchmark_group("canonical/lint");
        g.sample_size(if quick { 5 } else { 10 });
        g.throughput(Throughput::Elements(sources.len() as u64));
        g.bench_function("cold_parse", |b| {
            b.iter(|| {
                black_box(pcm_lint::scan(
                    black_box(&sources),
                    ci.clone(),
                    &Cache::empty(),
                    0,
                ))
                .diags
                .len()
            })
        });
        g.bench_function("warm_scan", |b| {
            b.iter(|| {
                black_box(pcm_lint::scan(
                    black_box(&sources),
                    ci.clone(),
                    &warm_cache,
                    0,
                ))
                .diags
                .len()
            })
        });
        g.finish();
    }

    // --- end-to-end system run, both scheduling policies ---------------
    let run_cfg = RunConfig::builder()
        .instructions_per_core(system_instructions(quick))
        .build()
        .expect("canonical suite configuration is valid");
    let p = WorkloadProfile::by_name("vips").expect("vips profile exists");
    let mut g = c.benchmark_group("canonical/system");
    g.sample_size(if quick { 5 } else { 10 });
    for (label, sched) in [
        ("vips_tetris_fixed", SchedConfig::fixed()),
        ("vips_tetris_adaptive", SchedConfig::adaptive()),
    ] {
        let mut cfg = run_cfg;
        cfg.system.controller.sched = sched;
        g.bench_function(label, |b| {
            b.iter(|| black_box(run_one(p, SchemeKind::Tetris, &cfg)))
        });
    }
    g.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The suite must register cleanly, produce no structural failures,
    /// and contain every id the committed baseline pins. Filters keep the
    /// test to the cheap micro benches.
    #[test]
    fn canonical_micro_benches_run_clean() {
        let mut c = Criterion::with_filters(vec!["canonical/analysis".into()]);
        canonical_suite(&mut c, true);
        assert!(!c.has_failures(), "{:?}", c.failures());
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "canonical/analysis/transitions",
                "canonical/analysis/flip_encode",
                "canonical/analysis/analyze_line",
            ]
        );
        assert!(
            c.results()
                .iter()
                .any(|r| matches!(r.throughput, Some(Throughput::Elements(8)))),
            "analyze_line carries its throughput annotation"
        );
    }
}
