//! Turn harness results into a validated [`BenchSnapshot`].
//!
//! The snapshot writer is the producing half of the perf trajectory: it
//! stamps run metadata (git revision, cargo profile, thread count,
//! scheme/rank configuration), converts each [`BenchResult`] into the
//! schema types from [`pcm_types::perf`], and refuses to emit anything
//! that fails [`BenchSnapshot::validate`] — an empty or ambiguous
//! snapshot must be a loud error, never a committed file.

use crate::{BenchResult, Throughput};
use pcm_types::perf::{BenchRecord, BenchSnapshot, BenchThroughput, SnapshotMeta, ThroughputUnit};
use pcm_types::PcmError;

/// Run metadata for a snapshot produced by this process. `git_rev` falls
/// back to `"unknown"` outside a git checkout (e.g. a source tarball);
/// everything else is derived from the build and host.
pub fn collect_meta(quick: bool) -> SnapshotMeta {
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    SnapshotMeta {
        git_rev,
        profile: profile.to_string(),
        threads,
        quick,
        // The canonical system benches run vips under Tetris on 1 rank;
        // see `suite::canonical_suite`.
        scheme: "tetris".to_string(),
        ranks: 1,
    }
}

/// Convert harness results into a validated snapshot.
pub fn snapshot_from_results(
    results: &[BenchResult],
    meta: SnapshotMeta,
) -> Result<BenchSnapshot, PcmError> {
    let benches = results
        .iter()
        .map(|r| BenchRecord {
            id: r.id.clone(),
            median_ns: r.median_ns,
            mad_ns: r.mad_ns,
            samples: r.samples as u64,
            iters_per_sample: r.iters_per_sample,
            throughput: r.throughput.map(|t| match t {
                Throughput::Elements(n) => BenchThroughput {
                    unit: ThroughputUnit::Elements,
                    per_iter: n,
                },
                Throughput::Bytes(n) => BenchThroughput {
                    unit: ThroughputUnit::Bytes,
                    per_iter: n,
                },
            }),
        })
        .collect();
    let snapshot = BenchSnapshot {
        version: BenchSnapshot::SCHEMA_VERSION,
        meta,
        benches,
    };
    snapshot.validate()?;
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &str) -> BenchResult {
        BenchResult {
            id: id.to_string(),
            median_ns: 42.0,
            mad_ns: 1.5,
            samples: 20,
            iters_per_sample: 1024,
            throughput: Some(Throughput::Bytes(64)),
        }
    }

    #[test]
    fn meta_reflects_build_and_host() {
        let meta = collect_meta(true);
        assert!(meta.quick);
        assert!(!meta.git_rev.is_empty());
        assert!(meta.threads >= 1);
        assert_eq!(meta.scheme, "tetris");
        // Tests run under `cargo test` (debug) or `--release`; either way
        // the profile string must match the build.
        let expect = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        assert_eq!(meta.profile, expect);
    }

    #[test]
    fn results_convert_and_validate() {
        let snap = snapshot_from_results(&[result("a/b"), result("a/c")], collect_meta(false))
            .expect("two distinct results are a valid snapshot");
        assert_eq!(snap.benches.len(), 2);
        assert_eq!(
            snap.benches[0].throughput,
            Some(BenchThroughput {
                unit: ThroughputUnit::Bytes,
                per_iter: 64
            })
        );
        // Round trip through the JSON text form.
        use pcm_types::JsonCodec;
        let back = BenchSnapshot::from_json_str(&snap.to_json().to_string_pretty()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_and_duplicate_results_are_rejected() {
        assert!(snapshot_from_results(&[], collect_meta(true)).is_err());
        let dup = [result("same/id"), result("same/id")];
        assert!(snapshot_from_results(&dup, collect_meta(true)).is_err());
    }
}
