//! # pcm-bench
//!
//! Benchmarks, one target per paper artifact plus micro benchmarks, on an
//! in-repo, stdlib-only harness exposing a Criterion-compatible API
//! ([`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`]/[`criterion_main!`]) — the bench files are written
//! exactly as they would be against the real crate; only the `use` line
//! differs. Each figure bench *regenerates its artifact once* (printed to
//! stderr so `cargo bench` output shows the same rows the paper reports)
//! and then measures the cost of the computation behind it.
//!
//! Methodology: every benchmark is warmed up until the per-iteration cost
//! is known, then timed over `sample_size` samples (batches sized to
//! ~5 ms each) and reported as **median ± MAD** — both robust to scheduler
//! noise, unlike mean/σ.
//!
//! CLI (`cargo bench --bench micro -- <filter>…`): positional arguments
//! are substring filters over the full benchmark id (`group/name`);
//! anything starting with `-` (e.g. cargo's own `--bench`) is ignored.
//!
//! Targets:
//!
//! | bench | artifact |
//! |---|---|
//! | `fig1_pulse_model` | Fig. 1 pulse asymmetries + cell programming |
//! | `fig3_bit_stats` | Fig. 3 per-workload SET/RESET statistics |
//! | `fig4_schedule` | Fig. 4 worked-example schedule + Gantt |
//! | `fig10_write_units` | Fig. 10 write-unit counts per scheme |
//! | `system_figures` | Figs. 11–14 full-system latency/IPC/runtime |
//! | `tables` | Tables I–III |
//! | `micro` | scheduler/driver/cache/zipf hot paths |
//! | `ablation` | packing-policy variants (FFD / FF / literal) |

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

pub mod snapshot;
pub mod suite;

/// Shared quick-run sizing for the system benches.
pub fn quick_run_config() -> tetris_experiments::RunConfig {
    tetris_experiments::RunConfig::builder()
        .instructions_per_core(100_000)
        .build()
        .expect("quick bench configuration is valid")
}

/// Default samples per benchmark (a group can override via
/// [`BenchmarkGroup::sample_size`]).
const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall-clock per sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
/// Warmup budget before sampling starts.
const WARMUP: Duration = Duration::from_millis(200);

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("plan", "dcw")` → id `plan/dcw`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id consisting of the parameter alone (`from_parameter(64)` → `64`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    called: bool,
}

impl Bencher {
    /// Time `routine`, called `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.called = true;
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One recorded benchmark outcome (also returned by [`Criterion::results`]
/// so tests can assert on the harness itself).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full id (`group/name`).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the per-iteration time, ns.
    pub mad_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample batch.
    pub iters_per_sample: u64,
    /// Throughput annotation of the group the bench ran under, if any.
    pub throughput: Option<Throughput>,
}

/// The benchmark driver: registers, filters, runs, and reports.
#[derive(Default)]
pub struct Criterion {
    filters: Vec<String>,
    results: Vec<BenchResult>,
    skipped: usize,
    failures: Vec<String>,
}

impl Criterion {
    /// Driver configured from the process arguments: positional args are
    /// substring filters, `-`-prefixed args (cargo's `--bench`) ignored.
    pub fn from_args() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Self::with_filters(filters)
    }

    /// Driver with an explicit substring-filter list (empty = run all).
    pub fn with_filters(filters: Vec<String>) -> Self {
        Criterion {
            filters,
            ..Default::default()
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }

    /// Benchmark a single function under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run_one(id, DEFAULT_SAMPLE_SIZE, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Results recorded so far (for harness self-tests).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Hard failures recorded so far (duplicate ids, zero-sample benches).
    /// Any entry here must make the process exit non-zero — a silently
    /// empty or ambiguous result set would poison every later snapshot
    /// comparison.
    pub fn failures(&self) -> &[String] {
        &self.failures
    }

    /// True when any benchmark failed structurally (see [`Self::failures`]).
    pub fn has_failures(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Print the closing line (and any failures); returns the number of
    /// benchmarks run.
    pub fn final_summary(&self) -> usize {
        eprintln!(
            "bench summary: {} run, {} filtered out",
            self.results.len(),
            self.skipped
        );
        for f in &self.failures {
            eprintln!("bench FAILURE: {f}");
        }
        self.results.len()
    }

    fn run_one(
        &mut self,
        id: String,
        sample_size: usize,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.matches(&id) {
            self.skipped += 1;
            return;
        }
        if self.results.iter().any(|r| r.id == id) {
            self.failures.push(format!(
                "duplicate benchmark id `{id}` — ids must be unique"
            ));
            return;
        }
        // Warmup: ramp the batch size until one batch costs ≥ ~1/4 of the
        // warmup budget or the budget elapses, to learn the per-iter cost.
        let warmup_start = Instant::now();
        let mut iters = 1u64;
        let mut per_iter;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
                called: false,
            };
            f(&mut b);
            if !b.called {
                // The closure never invoked `Bencher::iter`: no timing was
                // taken, so every "sample" would be a fabricated zero.
                self.failures.push(format!(
                    "benchmark `{id}` recorded zero samples (closure never called Bencher::iter)"
                ));
                return;
            }
            per_iter = b.elapsed.as_secs_f64() / iters as f64;
            if warmup_start.elapsed() >= WARMUP || b.elapsed >= WARMUP / 4 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        // Size sample batches to the target; slow routines get 1 iter.
        let iters_per_sample = if per_iter > 0.0 {
            ((TARGET_SAMPLE.as_secs_f64() / per_iter) as u64).clamp(1, 1 << 24)
        } else {
            1 << 24
        };
        let mut samples_ns: Vec<f64> = (0..sample_size.max(3))
            .map(|_| {
                let mut b = Bencher {
                    iters: iters_per_sample,
                    elapsed: Duration::ZERO,
                    called: false,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        let median_ns = median_of(&mut samples_ns);
        let mad_ns = mad_of(&samples_ns, median_ns);

        let mut line = format!(
            "{id:<44} time: [{} ± {}]  ({} samples × {} iters)",
            fmt_ns(median_ns),
            fmt_ns(mad_ns),
            samples_ns.len(),
            iters_per_sample,
        );
        if let Some(t) = throughput {
            let per_sec = match t {
                Throughput::Elements(n) => (n as f64) / (median_ns * 1e-9),
                Throughput::Bytes(n) => (n as f64) / (median_ns * 1e-9),
            };
            let unit = match t {
                Throughput::Elements(_) => "elem/s",
                Throughput::Bytes(_) => "B/s",
            };
            line.push_str(&format!("  thrpt: {} {unit}", fmt_count(per_sec)));
        }
        eprintln!("{line}");
        self.results.push(BenchResult {
            id,
            median_ns,
            mad_ns,
            samples: samples_ns.len(),
            iters_per_sample,
            throughput,
        });
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` as `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion
            .run_one(full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Benchmark `f(b, input)` as `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion
            .run_one(full, self.sample_size, self.throughput, &mut |b| {
                f(b, input)
            });
        self
    }

    /// Close the group (kept for criterion API parity; drop also works).
    pub fn finish(self) {}
}

/// Median of a sample series (sorts in place). Empty input yields 0.0 —
/// callers that care distinguish "no samples" *before* reaching here (see
/// the zero-sample failure path in `run_one`).
pub fn median_of(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Median absolute deviation around `median`. A constant series has MAD 0
/// exactly; downstream the regression gate treats that as "fall back to
/// the relative tolerance" — 0 is a legal value, never a divisor.
pub fn mad_of(values: &[f64], median: f64) -> f64 {
    let mut deviations: Vec<f64> = values.iter().map(|s| (s - median).abs()).collect();
    median_of(&mut deviations)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Bundle bench functions into a group runner, exactly like criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the given groups, like criterion's macro.
/// Exits non-zero when any benchmark failed structurally (duplicate id or
/// zero samples) so CI can't mistake a broken suite for a quiet one.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
            if c.has_failures() {
                std::process::exit(1);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        let mut c = Criterion::default();
        c.bench_function("t/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.id, "t/add");
        assert!(r.median_ns > 0.0);
        assert!(r.samples >= 3);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn filters_skip_nonmatching() {
        let mut c = Criterion {
            filters: vec!["zipf".into()],
            ..Default::default()
        };
        c.bench_function("micro/hamming", |b| b.iter(|| black_box(1)));
        c.bench_function("micro/zipf_sample", |b| b.iter(|| black_box(1)));
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "micro/zipf_sample");
        assert_eq!(c.final_summary(), 1);
    }

    #[test]
    fn groups_prefix_and_configure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(4);
        g.throughput(Throughput::Elements(64));
        g.bench_function(BenchmarkId::from_parameter(8), |b| b.iter(|| black_box(8)));
        g.bench_with_input(BenchmarkId::new("sq", 5), &5u64, |b, &v| {
            b.iter(|| black_box(v * v))
        });
        g.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "grp/8");
        assert_eq!(c.results()[1].id, "grp/sq/5");
        assert_eq!(c.results()[0].samples, 4);
    }

    #[test]
    fn median_and_mad_are_robust() {
        let mut v = vec![10.0, 11.0, 9.0, 10.5, 1000.0];
        assert_eq!(median_of(&mut v), 10.5);
        assert!(mad_of(&v, 10.5) <= 1.5, "outlier must not dominate MAD");
    }

    #[test]
    fn median_handles_odd_even_and_single_series() {
        assert_eq!(median_of(&mut [7.0]), 7.0, "single sample is its median");
        assert_eq!(median_of(&mut [3.0, 1.0, 2.0]), 2.0, "odd count");
        assert_eq!(
            median_of(&mut [4.0, 1.0, 3.0, 2.0]),
            2.5,
            "even count averages the middle pair"
        );
        assert_eq!(median_of(&mut []), 0.0, "empty series is sentinel zero");
    }

    #[test]
    fn mad_of_constant_series_is_exactly_zero() {
        let v = [5.0; 8];
        let m = median_of(&mut v.to_vec());
        assert_eq!(mad_of(&v, m), 0.0);
        // And a zero MAD must not blow up the regression gate: the
        // threshold falls back to the relative tolerance (no division).
        let rec = |median_ns, mad_ns| pcm_types::BenchRecord {
            id: "x".into(),
            median_ns,
            mad_ns,
            samples: 8,
            iters_per_sample: 1,
            throughput: None,
        };
        let gate = pcm_types::GatePolicy::default();
        let t = gate.threshold_ns(&rec(100.0, 0.0), &rec(100.0, 0.0));
        assert!(t.is_finite() && t > 0.0, "k·MAD fallback must stay usable");
        assert_eq!(t, 5.0, "5% tolerance decides when MAD is 0");
    }

    #[test]
    fn zero_sample_bench_is_a_loud_failure() {
        let mut c = Criterion::default();
        // A closure that never calls `b.iter` records nothing.
        c.bench_function("broken/no_iter", |_b| {});
        assert!(c.results().is_empty());
        assert!(c.has_failures());
        assert!(
            c.failures()[0].contains("zero samples"),
            "{:?}",
            c.failures()
        );
    }

    #[test]
    fn duplicate_bench_id_is_a_loud_failure() {
        let mut c = Criterion::default();
        c.bench_function("dup/x", |b| b.iter(|| black_box(1)));
        c.bench_function("dup/x", |b| b.iter(|| black_box(2)));
        assert_eq!(c.results().len(), 1, "second registration rejected");
        assert!(c.has_failures());
        assert!(c.failures()[0].contains("duplicate"), "{:?}", c.failures());
    }

    #[test]
    fn with_filters_matches_substring() {
        let mut c = Criterion::with_filters(vec!["keep".into()]);
        c.bench_function("a/keep_me", |b| b.iter(|| black_box(1)));
        c.bench_function("a/drop_me", |b| b.iter(|| black_box(1)));
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].id, "a/keep_me");
    }

    #[test]
    fn throughput_annotation_lands_in_results() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("tp");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("x", |b| b.iter(|| black_box(1)));
        g.finish();
        assert!(matches!(
            c.results()[0].throughput,
            Some(Throughput::Bytes(64))
        ));
    }

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.340 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.340 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
        assert_eq!(fmt_count(2.5e6), "2.50 M");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("plan", "dcw").into_id(), "plan/dcw");
        assert_eq!(BenchmarkId::from_parameter(64).into_id(), "64");
    }
}
