//! # pcm-bench
//!
//! Criterion benchmarks, one target per paper artifact plus micro
//! benchmarks. Each figure bench *regenerates its artifact once* (printed
//! to stderr so `cargo bench` output shows the same rows the paper
//! reports) and then measures the cost of the computation behind it.
//!
//! Targets:
//!
//! | bench | artifact |
//! |---|---|
//! | `fig1_pulse_model` | Fig. 1 pulse asymmetries + cell programming |
//! | `fig3_bit_stats` | Fig. 3 per-workload SET/RESET statistics |
//! | `fig4_schedule` | Fig. 4 worked-example schedule + Gantt |
//! | `fig10_write_units` | Fig. 10 write-unit counts per scheme |
//! | `system_figures` | Figs. 11–14 full-system latency/IPC/runtime |
//! | `tables` | Tables I–III |
//! | `micro` | scheduler/driver/cache/zipf hot paths |
//! | `ablation` | packing-policy variants (FFD / FF / literal) |

/// Shared quick-run sizing for the system benches.
pub fn quick_run_config() -> tetris_experiments::RunConfig {
    tetris_experiments::RunConfig {
        instructions_per_core: 100_000,
        ..tetris_experiments::RunConfig::quick()
    }
}
