//! `pcm-bench` — run the canonical suite and write a `BENCH_<n>.json`
//! perf snapshot.
//!
//! ```text
//! pcm-bench snapshot [--quick] [--out PATH] [FILTER…]
//! ```
//!
//! Positional `FILTER`s are substring filters over bench ids (same
//! semantics as `cargo bench -- <filter>`); `--out` defaults to stdout.
//! Exits 1 when the suite records a structural failure (duplicate id,
//! zero samples) or the resulting snapshot fails validation, 2 on usage
//! errors — CI must never mistake a broken suite for a quiet one.
//!
//! Compare two snapshots with `tetris-experiments bench-compare`.

use pcm_bench::snapshot::{collect_meta, snapshot_from_results};
use pcm_bench::suite::canonical_suite;
use pcm_bench::Criterion;
use pcm_types::JsonCodec;

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: pcm-bench snapshot [--quick] [--out PATH] [FILTER…]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("snapshot") => {}
        Some(other) => usage_error(&format!("unknown subcommand `{other}`")),
        None => usage_error("missing subcommand"),
    }
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => usage_error("--out needs a path"),
            },
            flag if flag.starts_with('-') => {
                usage_error(&format!("unknown flag `{flag}`"));
            }
            filter => filters.push(filter.to_string()),
        }
    }

    let mut c = Criterion::with_filters(filters);
    canonical_suite(&mut c, quick);
    c.final_summary();
    if c.has_failures() {
        std::process::exit(1);
    }

    let snapshot = match snapshot_from_results(c.results(), collect_meta(quick)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: refusing to write snapshot: {e}");
            std::process::exit(1);
        }
    };
    let text = snapshot.to_json().to_string_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text + "\n") {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "snapshot written to {path} ({} benches)",
                snapshot.benches.len()
            );
        }
        None => println!("{text}"),
    }
}
