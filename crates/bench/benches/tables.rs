//! Tables I–III: print them once, then measure their generation cost.

use pcm_bench::quick_run_config;
use pcm_bench::{criterion_group, criterion_main, Criterion};
use pcm_memsim::SystemConfig;
use pcm_workloads::ALL_PROFILES;
use std::hint::black_box;
use tetris_experiments::figures::{self, MatrixView};
use tetris_experiments::{run_matrix, SchemeKind};

fn bench(c: &mut Criterion) {
    let cfg = quick_run_config();
    let results = run_matrix(&ALL_PROFILES, &SchemeKind::COMPARED, &cfg);
    let m = MatrixView::new(&results, &ALL_PROFILES, &SchemeKind::COMPARED);
    eprintln!("{}", figures::table1(&m));
    eprintln!("{}", figures::table2(&SystemConfig::paper_baseline()));
    eprintln!("{}", figures::table3(Some(&m)));

    c.bench_function("tables/render_all", |b| {
        b.iter(|| {
            black_box(figures::table1(&m));
            black_box(figures::table2(&SystemConfig::paper_baseline()));
            black_box(figures::table3(Some(&m)));
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
