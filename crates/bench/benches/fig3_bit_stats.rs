//! Fig. 3 — per-workload bit-write statistics: print the figure once, then
//! measure the measurement harness and the content generator.

use pcm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcm_memsim::WriteContent;
use pcm_types::LineData;
use pcm_workloads::{measure_bit_stats, ProfileContent, WorkloadProfile, ALL_PROFILES};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    eprintln!("{}", tetris_experiments::figures::fig3(400, 7));
    let mut g = c.benchmark_group("fig3");
    for name in ["blackscholes", "vips"] {
        let p = WorkloadProfile::by_name(name).unwrap();
        g.bench_with_input(BenchmarkId::new("measure_200_writes", name), p, |b, p| {
            b.iter(|| black_box(measure_bit_stats(p, 200, 7)))
        });
    }
    g.bench_function("content_generate_line", |b| {
        let p = &ALL_PROFILES[7];
        let mut m = ProfileContent::new(p, 3);
        let old = LineData::from_units(&[0xAAAA_5555_0F0F_F0F0; 8]);
        b.iter(|| black_box(m.generate(0, &old)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
