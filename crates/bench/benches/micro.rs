//! Micro benchmarks of the hot paths: bit utilities, flip coding, the
//! Tetris packer vs demand size, the write driver, cache lookups, the
//! event queue and the zipf sampler.

use pcm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pcm_device::{WriteDriver, WriteSignal};
use pcm_memsim::cache::Cache;
use pcm_memsim::engine::{Event, EventQueue};
use pcm_memsim::CacheConfig;
use pcm_types::rng::{Rng, SmallRng};
use pcm_types::{flip_encode, hamming_unit, transitions, LineDemand, Ps, UnitDemand};
use pcm_workloads::Zipf;
use std::hint::black_box;
use tetris_write::{analyze, TetrisConfig};

fn bench(c: &mut Criterion) {
    c.bench_function("micro/transitions", |b| {
        b.iter(|| black_box(transitions(black_box(0xDEAD_BEEF), black_box(0xFEED_FACE))))
    });
    c.bench_function("micro/hamming_unit", |b| {
        b.iter(|| black_box(hamming_unit(black_box(0x0F0F), black_box(0xF0F0))))
    });
    c.bench_function("micro/flip_encode", |b| {
        b.iter(|| {
            black_box(flip_encode(
                black_box(0xAAAA),
                false,
                black_box(0x5555_5555),
            ))
        })
    });

    // Tetris packer scaling with line width (8/16/32 units = 64/128/256 B).
    let cfg = TetrisConfig::paper_baseline();
    let mut g = c.benchmark_group("micro/analyze_units");
    for n in [8usize, 16, 32] {
        let demand = LineDemand::from_units(&vec![UnitDemand::new(7, 3); n]);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &demand, |b, d| {
            b.iter(|| black_box(analyze(d, &cfg).unwrap()))
        });
    }
    g.finish();

    c.bench_function("micro/write_driver", |b| {
        let d = WriteDriver::new(17);
        b.iter(|| black_box(d.drive(black_box(0x1_5555), black_box(0x0_AAAA), WriteSignal::One)))
    });

    c.bench_function("micro/cache_access", |b| {
        let geometry = CacheConfig::builder()
            .size_bytes(32 << 10)
            .assoc(4)
            .build()
            .unwrap();
        let mut cache = Cache::new(geometry, 64).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        b.iter(|| {
            let addr = (rng.gen::<u64>() % 4096) * 64;
            black_box(cache.access(addr, rng.gen_bool(0.2)))
        })
    });

    c.bench_function("micro/event_queue_push_pop", |b| {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            q.push(Ps(t % 1000), Event::CoreStep { core: 0 });
            black_box(q.pop())
        })
    });

    c.bench_function("micro/zipf_sample", |b| {
        let z = Zipf::new(16_384, 0.9);
        let mut rng = SmallRng::seed_from_u64(6);
        b.iter(|| black_box(z.sample(&mut rng)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
