//! Fig. 10 — write units per cache-line write: print the per-scheme counts
//! once (algorithm level), then measure per-scheme planning throughput.

use pcm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcm_schemes::{
    DcwWrite, FlipNWrite, SchemeConfig, ThreeStageWrite, TwoStageWrite, WriteCtx, WriteScheme,
};
use pcm_types::LineData;
use pcm_workloads::WorkloadProfile;
use std::hint::black_box;
use tetris_experiments::ablation::sample_demands;
use tetris_write::{analyze, TetrisConfig, TetrisWrite};

fn bench(c: &mut Criterion) {
    // Regenerate the Fig. 10 row for each workload (algorithmic Tetris
    // counts + analytic baselines).
    let cfg = TetrisConfig::paper_baseline();
    eprintln!("Fig. 10 (algorithm level) — avg write units per cache-line write");
    for p in pcm_workloads::ALL_PROFILES.iter() {
        let demands = sample_demands(p, 300, 11);
        let avg: f64 = demands
            .iter()
            .map(|d| analyze(d, &cfg).unwrap().write_units_equiv())
            .sum::<f64>()
            / demands.len() as f64;
        eprintln!(
            "  {:<14} DCW 8.00  FNW 4.00  2SW 2.99  3SW 2.49  Tetris {avg:.2}",
            p.name
        );
    }

    // Planning throughput per scheme on a representative write.
    let scheme_cfg = SchemeConfig::paper_baseline();
    let old = LineData::from_units(&[0x0123_4567_89AB_CDEF; 8]);
    let mut new = old;
    for i in 0..8 {
        new.xor_unit(i, 0x00FF_0000_0000_0370);
    }
    let ctx = WriteCtx {
        old_stored: &old,
        old_flips: 0,
        new_logical: &new,
        cfg: &scheme_cfg,
    };
    let schemes: Vec<(&str, Box<dyn WriteScheme>)> = vec![
        ("dcw", Box::new(DcwWrite)),
        ("fnw", Box::new(FlipNWrite)),
        ("2sw", Box::new(TwoStageWrite)),
        ("3sw", Box::new(ThreeStageWrite)),
        ("tetris", Box::new(TetrisWrite::paper_baseline())),
    ];
    let mut g = c.benchmark_group("fig10_plan");
    for (name, s) in &schemes {
        g.bench_with_input(BenchmarkId::from_parameter(name), s, |b, s| {
            b.iter(|| black_box(s.plan(black_box(&ctx))))
        });
    }
    g.finish();

    // Tetris analysis across the workload spectrum.
    let mut g = c.benchmark_group("fig10_tetris_analyze");
    for name in ["blackscholes", "vips"] {
        let p = WorkloadProfile::by_name(name).unwrap();
        let demands = sample_demands(p, 64, 13);
        g.bench_with_input(BenchmarkId::from_parameter(name), &demands, |b, demands| {
            b.iter(|| {
                for d in demands {
                    black_box(analyze(d, &cfg).unwrap());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
