//! Packing-policy ablation: print the ablation table once, then compare
//! the cost of the corrected FFD packer against the paper-literal listing
//! and the no-sort / no-steal variants.

use pcm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcm_workloads::WorkloadProfile;
use std::hint::black_box;
use tetris_experiments::ablation::{self, sample_demands};
use tetris_write::{analyze, paper_literal::paper_literal_analyze, TetrisConfig};

fn bench(c: &mut Criterion) {
    eprintln!("{}", ablation::packing_ablation(200, 3));
    eprintln!("{}", ablation::budget_sweep(150, 4));
    eprintln!("{}", ablation::utilization_study(150, 6));

    let p = WorkloadProfile::by_name("dedup").unwrap();
    let demands = sample_demands(p, 64, 17);
    let base = TetrisConfig::paper_baseline();
    let mut no_sort = base;
    no_sort.sort_decreasing = false;
    let mut no_steal = base;
    no_steal.steal_write0_slack = false;

    let mut g = c.benchmark_group("ablation_pack_64_lines");
    g.bench_with_input(
        BenchmarkId::from_parameter("ffd_steal"),
        &demands,
        |b, ds| {
            b.iter(|| {
                for d in ds {
                    black_box(analyze(d, &base).unwrap());
                }
            })
        },
    );
    g.bench_with_input(BenchmarkId::from_parameter("no_sort"), &demands, |b, ds| {
        b.iter(|| {
            for d in ds {
                black_box(analyze(d, &no_sort).unwrap());
            }
        })
    });
    g.bench_with_input(
        BenchmarkId::from_parameter("no_steal"),
        &demands,
        |b, ds| {
            b.iter(|| {
                for d in ds {
                    black_box(analyze(d, &no_steal).unwrap());
                }
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::from_parameter("paper_literal"),
        &demands,
        |b, ds| {
            b.iter(|| {
                for d in ds {
                    black_box(paper_literal_analyze(d, &base).unwrap());
                }
            })
        },
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
