//! Beyond-paper extensions: print the batching / pausing / subarray tables
//! once, then measure the batch packer, the wear leveler, and the P&V loop.

use pcm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcm_device::verify::{program_row_verified, VerifyParams};
use pcm_device::CellBlock;
use pcm_memsim::StartGap;
use pcm_types::rng::SmallRng;
use pcm_types::PcmTimings;
use pcm_workloads::WorkloadProfile;
use std::hint::black_box;
use tetris_experiments::ablation::{self, sample_demands};
use tetris_write::{analyze_batch, TetrisConfig};

fn bench(c: &mut Criterion) {
    eprintln!("{}", ablation::batching_study(200, 21));
    let quick = pcm_bench::quick_run_config();
    eprintln!("{}", ablation::system_batching_study(&quick));
    eprintln!("{}", ablation::write_pausing_study(&quick));
    eprintln!("{}", ablation::subarray_sweep(&quick));

    // Batch packer scaling.
    let p = WorkloadProfile::by_name("ferret").unwrap();
    let demands = sample_demands(p, 16, 5);
    let cfg = TetrisConfig::paper_baseline();
    let mut g = c.benchmark_group("ext_analyze_batch");
    for n in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(analyze_batch(&demands[..n], &cfg).unwrap()))
        });
    }
    g.finish();

    c.bench_function("ext/start_gap_map", |b| {
        let mut sg = StartGap::new(1 << 20, 100);
        let mut la = 0u64;
        b.iter(|| {
            la = (la + 12_345) % (1 << 20);
            sg.on_write();
            black_box(sg.map(la))
        })
    });

    c.bench_function("ext/pv_program_5pct_failures", |b| {
        let t = PcmTimings::paper_baseline();
        let params = VerifyParams {
            failure_ppm: 50_000,
            max_rounds: 16,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut block = CellBlock::new(1, 64).unwrap();
            black_box(
                program_row_verified(&mut block, 0, 0xFFFF_FFFF, 0, &t, &params, &mut rng).unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
