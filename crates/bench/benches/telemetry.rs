//! Telemetry overhead: the instrumented simulator must cost nothing when
//! tracing is off (`NullSink`, the default) and stay cheap with an
//! in-memory sink. Compares a full system run under each sink, plus the
//! raw per-event cost of the sink trait object.

use pcm_bench::{criterion_group, criterion_main, Criterion};
use pcm_telemetry::{
    AsyncTraceWriter, MemorySink, NullSink, OpKind, Telemetry, TelemetryEvent, TraceDetail,
};
use pcm_types::Ps;
use pcm_workloads::WorkloadProfile;
use std::hint::black_box;
use tetris_experiments::{run_one, run_one_traced, RunConfig, SchemeKind};

fn bench(c: &mut Criterion) {
    let cfg = RunConfig::builder()
        .instructions_per_core(50_000)
        .build()
        .unwrap();
    let p = WorkloadProfile::by_name("vips").unwrap();

    let mut g = c.benchmark_group("telemetry/system_run");
    g.sample_size(10);
    // Baseline: the default path, NullSink behind the scenes.
    g.bench_function("null_sink", |b| {
        b.iter(|| black_box(run_one(p, SchemeKind::Tetris, &cfg)))
    });
    // Every event recorded in memory (upper bound on tracing overhead
    // without disk I/O in the loop).
    g.bench_function("memory_sink", |b| {
        b.iter(|| {
            black_box(run_one_traced(
                p,
                SchemeKind::Tetris,
                &cfg,
                Box::new(MemorySink::with_detail(TraceDetail::Fine)),
            ))
        })
    });
    // Async rank-tagged sink draining into a background thread (the
    // sharded-run tracing path; acceptance target is <2% over null_sink
    // at Coarse detail — the producer only pays a bounded-channel send).
    // The writer thread lives across iterations; Drop joins it untimed.
    g.bench_function("async_sink_coarse", |b| {
        let w = AsyncTraceWriter::new(std::io::sink(), TraceDetail::Coarse);
        b.iter(|| {
            black_box(run_one_traced(
                p,
                SchemeKind::Tetris,
                &cfg,
                Box::new(w.rank_sink(0)),
            ))
        })
    });
    g.finish();

    // Raw dispatch cost of one event through the trait object.
    let ev = TelemetryEvent::BankBusy {
        at: Ps(1_000),
        bank: 3,
        kind: OpKind::Write,
        until: Ps(501_000),
        lines: 4,
    };
    c.bench_function("telemetry/null_sink_event", |b| {
        let mut sink: Box<dyn Telemetry> = Box::new(NullSink);
        b.iter(|| sink.record(black_box(&ev)))
    });
    c.bench_function("telemetry/memory_sink_event", |b| {
        let mut sink: Box<dyn Telemetry> = Box::new(MemorySink::new());
        b.iter(|| sink.record(black_box(&ev)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
