//! Fig. 4 — the worked example: print the Gantt once, then measure the
//! analysis stage and FSM execution on the example.

use pcm_bench::{criterion_group, criterion_main, Criterion};
use pcm_device::{FsmExecutor, PcmBank};
use pcm_types::{LineData, LineDemand, PcmTimings, PowerParams, UnitDemand};
use std::hint::black_box;
use tetris_write::{analyze, build_jobs, read_stage, render_gantt, TetrisConfig};

fn fig4_demand() -> LineDemand {
    LineDemand::from_units(&[
        UnitDemand::new(8, 0),
        UnitDemand::new(7, 1),
        UnitDemand::new(7, 1),
        UnitDemand::new(6, 2),
        UnitDemand::new(6, 3),
        UnitDemand::new(6, 2),
        UnitDemand::new(5, 2),
        UnitDemand::new(3, 5),
    ])
}

fn bench(c: &mut Criterion) {
    let mut cfg = TetrisConfig::paper_baseline();
    cfg.scheme.power = PowerParams {
        l_ratio: 2,
        budget_per_bank: 32,
        chips_per_bank: 4,
    };
    let demand = fig4_demand();
    let analysis = analyze(&demand, &cfg).unwrap();
    eprintln!("Fig. 4 worked example:\n{}", render_gantt(&analysis, 8));

    c.bench_function("fig4/analyze", |b| {
        b.iter(|| black_box(analyze(black_box(&demand), &cfg).unwrap()))
    });
    c.bench_function("fig4/render_gantt", |b| {
        b.iter(|| black_box(render_gantt(&analysis, 8)))
    });
    c.bench_function("fig4/fsm_execute", |b| {
        // A concrete realization of the Fig. 4 demand.
        let cfg_full = TetrisConfig::paper_baseline();
        let old = LineData::zeroed(64);
        let new = LineData::from_units(&[
            0xFF,
            0x7F | 1 << 63,
            0x7F | 1 << 62,
            0x3F | 0b11 << 40,
            0x3F | 0b111 << 40,
            0x3F | 0b11 << 50,
            0x1F | 0b11 << 30,
            0x7 | 0b11111 << 20,
        ]);
        // old has zero bits → pure SET example; use full-budget config.
        let ctx = pcm_schemes::WriteCtx {
            old_stored: &old,
            old_flips: 0,
            new_logical: &new,
            cfg: &cfg_full.scheme,
        };
        let out = read_stage(&ctx);
        let analysis = analyze(&out.demand, &cfg_full).unwrap();
        let jobs = build_jobs(&old, 0, &out, &analysis).unwrap();
        let exec = FsmExecutor::new(PcmTimings::paper_baseline()).unwrap();
        b.iter(|| {
            let mut bank = PcmBank::new(1, 8, PowerParams::paper_baseline(), true).unwrap();
            black_box(exec.execute(&mut bank, &jobs).unwrap())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
