//! Fig. 1 — pulse asymmetries: print the pulse table once, then measure the
//! cell-programming hot path.

use pcm_bench::{criterion_group, criterion_main, Criterion};
use pcm_device::{PcmCell, PulseLibrary};
use pcm_schemes::SchemeConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    eprintln!(
        "{}",
        tetris_experiments::figures::fig1(&SchemeConfig::paper_baseline())
    );
    let lib = PulseLibrary::paper_baseline();
    c.bench_function("fig1/cell_set_reset_cycle", |b| {
        let mut cell = PcmCell::default();
        b.iter(|| {
            cell.apply(black_box(lib.set));
            cell.apply(black_box(lib.reset));
            black_box(cell.read())
        })
    });
    c.bench_function("fig1/pulse_library_build", |b| {
        b.iter(|| black_box(PulseLibrary::paper_baseline()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
