//! Figs. 11–14 — full-system latency/IPC/runtime: print a compact version
//! of the four figures once, then measure one simulation per scheme.

use pcm_bench::quick_run_config;
use pcm_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcm_workloads::{WorkloadProfile, ALL_PROFILES};
use std::hint::black_box;
use tetris_experiments::figures::{self, MatrixView};
use tetris_experiments::{run_matrix, run_one, SchemeKind};

fn bench(c: &mut Criterion) {
    let cfg = quick_run_config();
    // Regenerate Figs. 11–14 on the quick sizing.
    let results = run_matrix(&ALL_PROFILES, &SchemeKind::COMPARED, &cfg);
    let m = MatrixView::new(&results, &ALL_PROFILES, &SchemeKind::COMPARED);
    eprintln!("{}", figures::fig11(&m));
    eprintln!("{}", figures::fig12(&m));
    eprintln!("{}", figures::fig13(&m));
    eprintln!("{}", figures::fig14(&m));

    let p = WorkloadProfile::by_name("ferret").unwrap();
    let mut g = c.benchmark_group("system_sim_ferret_100k");
    g.sample_size(10);
    for kind in SchemeKind::COMPARED {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.short()),
            &kind,
            |b, &kind| b.iter(|| black_box(run_one(p, kind, &cfg))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
