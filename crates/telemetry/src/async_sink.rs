//! Asynchronous trace ingestion for sharded runs.
//!
//! A sharded simulation runs one [`crate::Telemetry`] producer per rank on
//! the experiment thread pool. Writing JSONL synchronously from each rank
//! would serialize the ranks on the output file; instead every rank gets an
//! [`AsyncRankSink`] — a cheap handle over a **bounded channel** (the
//! ring-buffer stage; a full channel applies backpressure rather than
//! dropping events) — and a single background thread owned by
//! [`AsyncTraceWriter`] drains all ranks into one writer, tagging each
//! line with its rank so [`read_tagged_events`] can split the stream
//! again.
//!
//! [`RingBufferSink`] is the always-on variant from the ROADMAP: a
//! fixed-capacity in-memory ring of the most recent coarse events that a
//! crashed or finished run can dump post-mortem.

use crate::event::{TelemetryEvent, TraceDetail};
use crate::sink::Telemetry;
use pcm_types::{Json, JsonCodec};
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// Default bound of the per-writer event channel (batches in flight).
pub const DEFAULT_CHANNEL_CAPACITY: usize = 4096;

/// Events a producer accumulates locally before one channel send. Keeps
/// the hot-path cost at a clone + `Vec::push`; the mutex/condvar rendezvous
/// is paid once per batch.
const PRODUCER_BATCH: usize = 64;

/// Encode one event as a compact JSON line with a `rank` tag appended.
fn tagged_line(rank: u32, ev: &TelemetryEvent) -> String {
    let mut j = ev.to_json();
    if let Json::Obj(ref mut fields) = j {
        fields.push(("rank".to_string(), Json::UInt(rank as u64)));
    }
    j.to_string_compact()
}

/// Background JSONL writer fed by per-rank [`AsyncRankSink`] handles.
///
/// ```
/// use pcm_telemetry::{AsyncTraceWriter, Telemetry, TelemetryEvent, TraceDetail};
/// use pcm_types::Ps;
/// let mut w = AsyncTraceWriter::new(Vec::new(), TraceDetail::Coarse);
/// let mut rank0 = w.rank_sink(0);
/// rank0.record(&TelemetryEvent::DrainStart { at: Ps(1), writes: 32 });
/// drop(rank0);
/// let (bytes, written) = w.finish().unwrap();
/// assert_eq!(written, 1);
/// assert!(!bytes.is_empty());
/// ```
pub struct AsyncTraceWriter<W: Write + Send + 'static> {
    tx: Option<SyncSender<(u32, Vec<TelemetryEvent>)>>,
    handle: Option<JoinHandle<io::Result<(W, u64)>>>,
    level: TraceDetail,
}

fn writer_loop<W: Write + Send + 'static>(
    rx: Receiver<(u32, Vec<TelemetryEvent>)>,
    w: W,
) -> io::Result<(W, u64)> {
    let mut buf = io::BufWriter::new(w);
    let mut written = 0u64;
    for (rank, batch) in rx {
        for ev in &batch {
            writeln!(buf, "{}", tagged_line(rank, ev))?;
            written += 1;
        }
    }
    buf.flush()?;
    let w = buf.into_inner().map_err(|e| e.into_error())?;
    Ok((w, written))
}

impl<W: Write + Send + 'static> AsyncTraceWriter<W> {
    /// Spawn the writer thread with the default channel capacity.
    pub fn new(w: W, level: TraceDetail) -> Self {
        Self::with_capacity(w, level, DEFAULT_CHANNEL_CAPACITY)
    }

    /// Spawn the writer thread over a channel bounded at `capacity`
    /// event batches. Producers block (backpressure) when the buffer is
    /// full.
    pub fn with_capacity(w: W, level: TraceDetail, capacity: usize) -> Self {
        let (tx, rx) = sync_channel(capacity.max(1));
        let handle = std::thread::spawn(move || writer_loop(rx, w));
        AsyncTraceWriter {
            tx: Some(tx),
            handle: Some(handle),
            level,
        }
    }

    /// A [`Telemetry`] handle that tags every event with `rank`.
    /// Handles are independent; one per rank thread.
    pub fn rank_sink(&self, rank: u32) -> AsyncRankSink {
        AsyncRankSink {
            rank,
            level: self.level,
            buf: Vec::with_capacity(PRODUCER_BATCH),
            tx: self.tx.clone().expect("writer already finished"),
        }
    }

    /// Close the channel, join the writer thread, and return the inner
    /// writer plus the number of events written. All rank sinks must be
    /// dropped before this returns (the channel drains first).
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        drop(self.tx.take());
        let handle = self.handle.take().expect("writer already finished");
        handle
            .join()
            .map_err(|_| io::Error::other("telemetry writer thread panicked"))?
    }
}

impl<W: Write + Send + 'static> Drop for AsyncTraceWriter<W> {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl AsyncTraceWriter<std::fs::File> {
    /// Create (truncate) a trace file at `path` and spawn the writer.
    pub fn create(path: &std::path::Path, level: TraceDetail) -> io::Result<Self> {
        Ok(AsyncTraceWriter::new(std::fs::File::create(path)?, level))
    }
}

/// One rank's producer handle into an [`AsyncTraceWriter`].
///
/// `Send`, cheap to clone, and infallible on the hot path: if the writer
/// thread has died (I/O error), events are dropped here and the error
/// surfaces from [`AsyncTraceWriter::finish`]. Events accumulate in a
/// local buffer and ship to the writer thread a batch (64 events) at a
/// time; the remainder flushes when the sink is dropped.
pub struct AsyncRankSink {
    rank: u32,
    level: TraceDetail,
    buf: Vec<TelemetryEvent>,
    tx: SyncSender<(u32, Vec<TelemetryEvent>)>,
}

impl Clone for AsyncRankSink {
    fn clone(&self) -> AsyncRankSink {
        // A clone is a fresh producer handle: same destination, own
        // (empty) buffer — buffered events belong to the original.
        AsyncRankSink {
            rank: self.rank,
            level: self.level,
            buf: Vec::with_capacity(PRODUCER_BATCH),
            tx: self.tx.clone(),
        }
    }
}

impl AsyncRankSink {
    fn flush(&mut self) {
        if !self.buf.is_empty() {
            // Blocking send = bounded-buffer backpressure; Err means the
            // writer died, surfaced later by finish().
            let _ = self.tx.send((self.rank, std::mem::take(&mut self.buf)));
        }
    }
}

impl Telemetry for AsyncRankSink {
    fn detail(&self) -> Option<TraceDetail> {
        Some(self.level)
    }

    fn record(&mut self, ev: &TelemetryEvent) {
        if self.wants(ev.detail()) {
            self.buf.push(ev.clone());
            if self.buf.len() >= PRODUCER_BATCH {
                self.flush();
            }
        }
    }
}

impl Drop for AsyncRankSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Always-on, fixed-capacity ring of the most recent events.
///
/// Keeps recording forever at O(1) memory by discarding the oldest event
/// when full — the ROADMAP's "always-on Coarse ring buffer + post-mortem
/// dump". [`RingBufferSink::dump`] writes the surviving window as JSONL.
#[derive(Debug)]
pub struct RingBufferSink {
    ring: VecDeque<TelemetryEvent>,
    capacity: usize,
    dropped: u64,
    level: TraceDetail,
}

impl RingBufferSink {
    /// A Coarse-detail ring keeping the last `capacity` events.
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink::with_detail(capacity, TraceDetail::Coarse)
    }

    /// A ring keeping the last `capacity` events up to `level`.
    pub fn with_detail(capacity: usize, level: TraceDetail) -> RingBufferSink {
        RingBufferSink {
            ring: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            dropped: 0,
            level,
        }
    }

    /// The surviving window, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.ring.iter()
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted to make room since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Post-mortem dump: write the surviving window as JSONL.
    pub fn dump<W: Write>(&self, w: &mut W) -> io::Result<u64> {
        let mut n = 0u64;
        for ev in &self.ring {
            writeln!(w, "{}", ev.to_json_string())?;
            n += 1;
        }
        Ok(n)
    }
}

impl Telemetry for RingBufferSink {
    fn detail(&self) -> Option<TraceDetail> {
        Some(self.level)
    }

    fn record(&mut self, ev: &TelemetryEvent) {
        if !self.wants(ev.detail()) {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev.clone());
    }
}

/// Parse a JSONL trace whose lines may carry a `rank` tag (as written by
/// [`AsyncTraceWriter`]). Untagged lines — e.g. from a plain
/// [`crate::JsonlSink`] — decode as rank 0, so single-rank traces read
/// identically through either entry point.
pub fn read_tagged_events<R: BufRead>(r: R) -> io::Result<Vec<(u32, TelemetryEvent)>> {
    let mut events = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bad = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
        let v = Json::parse(line).map_err(|e| bad(format!("trace line {}: {e}", i + 1)))?;
        let rank = v.get("rank").and_then(Json::as_u64).unwrap_or(0) as u32;
        let ev =
            TelemetryEvent::from_json(&v).map_err(|e| bad(format!("trace line {}: {e}", i + 1)))?;
        events.push((rank, ev));
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::read_events;
    use pcm_types::Ps;

    fn ev(at: u64) -> TelemetryEvent {
        TelemetryEvent::DrainStart {
            at: Ps(at),
            writes: 32,
        }
    }

    #[test]
    fn async_writer_tags_and_roundtrips() {
        let w = AsyncTraceWriter::new(Vec::new(), TraceDetail::Fine);
        let mut r0 = w.rank_sink(0);
        let mut r3 = w.rank_sink(3);
        r0.record(&ev(10));
        r3.record(&ev(20));
        r0.record(&ev(30));
        drop((r0, r3));
        let (bytes, written) = w.finish().unwrap();
        assert_eq!(written, 3);
        let tagged = read_tagged_events(&bytes[..]).unwrap();
        let ranks: Vec<u32> = tagged.iter().map(|(r, _)| *r).collect();
        assert!(ranks.contains(&3) && ranks.contains(&0));
        // The rank tag is an envelope field: the plain reader still parses.
        let plain = read_events(&bytes[..]).unwrap();
        assert_eq!(plain.len(), 3);
    }

    #[test]
    fn async_sink_filters_by_detail() {
        let w = AsyncTraceWriter::new(Vec::new(), TraceDetail::Coarse);
        let mut s = w.rank_sink(1);
        s.record(&TelemetryEvent::QueueDepth {
            at: Ps(1),
            reads: 1,
            writes: 1,
        }); // Fine: dropped
        s.record(&ev(5)); // Coarse: kept
        drop(s);
        let (_, written) = w.finish().unwrap();
        assert_eq!(written, 1);
    }

    #[test]
    fn bounded_channel_applies_backpressure_not_loss() {
        let w = AsyncTraceWriter::with_capacity(Vec::new(), TraceDetail::Fine, 2);
        let mut s = w.rank_sink(0);
        for i in 0..100 {
            s.record(&ev(i)); // blocks when 2 in flight; never drops
        }
        drop(s);
        let (_, written) = w.finish().unwrap();
        assert_eq!(written, 100);
    }

    #[test]
    fn untagged_lines_read_as_rank_zero() {
        let mut sink = crate::JsonlSink::new(Vec::new(), TraceDetail::Fine);
        sink.record(&ev(7));
        let bytes = sink.finish().unwrap();
        let tagged = read_tagged_events(&bytes[..]).unwrap();
        assert_eq!(tagged, vec![(0, ev(7))]);
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut ring = RingBufferSink::with_detail(3, TraceDetail::Fine);
        for i in 0..10 {
            ring.record(&ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        let ats: Vec<u64> = ring
            .events()
            .filter_map(|e| e.at().map(|p| p.as_ps()))
            .collect();
        assert_eq!(ats, vec![7, 8, 9], "oldest evicted first");
        let mut out = Vec::new();
        assert_eq!(ring.dump(&mut out).unwrap(), 3);
        assert_eq!(read_events(&out[..]).unwrap().len(), 3);
    }

    #[test]
    fn ring_default_level_is_coarse() {
        let mut ring = RingBufferSink::new(8);
        ring.record(&TelemetryEvent::QueueDepth {
            at: Ps(1),
            reads: 1,
            writes: 1,
        });
        assert!(ring.is_empty(), "fine events dropped at Coarse level");
        ring.record(&ev(2));
        assert_eq!(ring.len(), 1);
    }
}
