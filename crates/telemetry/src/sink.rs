//! Sinks the simulator records [`TelemetryEvent`]s into.

use crate::event::{TelemetryEvent, TraceDetail};
use pcm_types::{Json, JsonCodec};
use std::io::{self, BufRead, Write};

/// The recording interface the memory hierarchy is instrumented against.
///
/// The simulator holds a `&mut dyn Telemetry` (or a boxed one) and calls
/// [`Telemetry::record`] at each instrumentation point, guarded by
/// [`Telemetry::wants`] so disabled sinks cost one virtual call and no
/// event construction:
///
/// ```
/// use pcm_telemetry::{NullSink, Telemetry, TelemetryEvent, TraceDetail};
/// use pcm_types::Ps;
/// let mut tel = NullSink;
/// if tel.wants(TraceDetail::Fine) {
///     tel.record(&TelemetryEvent::BankIdle { at: Ps(100), bank: 0 });
/// }
/// assert!(!tel.wants(TraceDetail::Coarse)); // never reached above
/// ```
pub trait Telemetry {
    /// The detail level this sink records, or `None` when disabled.
    fn detail(&self) -> Option<TraceDetail>;

    /// Record one event. Implementations may assume the caller already
    /// checked [`Telemetry::wants`], but must stay correct (filter or
    /// drop) if handed an event above their level.
    fn record(&mut self, ev: &TelemetryEvent);

    /// Would an event of detail `d` be kept? Instrumentation points use
    /// this to skip event construction entirely for [`NullSink`].
    fn wants(&self, d: TraceDetail) -> bool {
        self.detail().is_some_and(|lvl| lvl >= d)
    }

    /// Flush buffered output and surface any deferred I/O error.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The zero-cost default sink: records nothing, reports disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Telemetry for NullSink {
    fn detail(&self) -> Option<TraceDetail> {
        None
    }

    fn record(&mut self, _ev: &TelemetryEvent) {}
}

/// Collects events in memory; the test and summary workhorse.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Every recorded event, in arrival order.
    pub events: Vec<TelemetryEvent>,
    level: TraceDetail,
}

impl MemorySink {
    /// A sink recording everything ([`TraceDetail::Fine`]).
    pub fn new() -> MemorySink {
        MemorySink::with_detail(TraceDetail::Fine)
    }

    /// A sink recording events up to `level`.
    pub fn with_detail(level: TraceDetail) -> MemorySink {
        MemorySink {
            events: Vec::new(),
            level,
        }
    }
}

impl Telemetry for MemorySink {
    fn detail(&self) -> Option<TraceDetail> {
        Some(self.level)
    }

    fn record(&mut self, ev: &TelemetryEvent) {
        if self.wants(ev.detail()) {
            self.events.push(ev.clone());
        }
    }
}

/// Streams one compact JSON object per line to any writer.
///
/// Output is buffered; I/O errors are deferred and surfaced by
/// [`Telemetry::flush`] (recording itself stays infallible so the
/// simulator's hot path carries no `Result` plumbing).
pub struct JsonlSink<W: Write> {
    w: io::BufWriter<W>,
    level: TraceDetail,
    written: u64,
    err: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer, keeping events up to `level`.
    pub fn new(w: W, level: TraceDetail) -> JsonlSink<W> {
        JsonlSink {
            w: io::BufWriter::new(w),
            level,
            written: 0,
            err: None,
        }
    }

    /// Events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and return the inner writer (first deferred error wins).
    pub fn finish(mut self) -> io::Result<W> {
        Telemetry::flush(&mut self)?;
        self.w.into_inner().map_err(|e| e.into_error())
    }
}

impl JsonlSink<std::fs::File> {
    /// Create (truncate) a trace file at `path`.
    pub fn create(path: &std::path::Path, level: TraceDetail) -> io::Result<Self> {
        Ok(JsonlSink::new(std::fs::File::create(path)?, level))
    }
}

impl<W: Write> Telemetry for JsonlSink<W> {
    fn detail(&self) -> Option<TraceDetail> {
        Some(self.level)
    }

    fn record(&mut self, ev: &TelemetryEvent) {
        if self.err.is_some() || !self.wants(ev.detail()) {
            return;
        }
        if let Err(e) = writeln!(self.w, "{}", ev.to_json_string()) {
            self.err = Some(e);
        } else {
            self.written += 1;
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()
    }
}

/// Forwarding impls so `Box<dyn Telemetry>` and `&mut dyn Telemetry`
/// can themselves be passed where `impl Telemetry` is expected.
impl<T: Telemetry + ?Sized> Telemetry for &mut T {
    fn detail(&self) -> Option<TraceDetail> {
        (**self).detail()
    }
    fn record(&mut self, ev: &TelemetryEvent) {
        (**self).record(ev)
    }
    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
}

impl<T: Telemetry + ?Sized> Telemetry for Box<T> {
    fn detail(&self) -> Option<TraceDetail> {
        (**self).detail()
    }
    fn record(&mut self, ev: &TelemetryEvent) {
        (**self).record(ev)
    }
    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
}

/// Parse a JSONL trace from a reader. Blank lines are skipped; a
/// malformed line aborts with `InvalidData` naming the line number.
pub fn read_events<R: BufRead>(r: R) -> io::Result<Vec<TelemetryEvent>> {
    let mut events = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {e}", i + 1),
            )
        })?;
        let ev = TelemetryEvent::from_json(&v).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: {e}", i + 1),
            )
        })?;
        events.push(ev);
    }
    Ok(events)
}

/// [`read_events`] over an in-memory string (tests, fixtures).
pub fn read_events_str(s: &str) -> io::Result<Vec<TelemetryEvent>> {
    read_events(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use pcm_types::Ps;

    fn fine_event() -> TelemetryEvent {
        TelemetryEvent::QueueDepth {
            at: Ps(10),
            reads: 1,
            writes: 2,
        }
    }

    fn coarse_event() -> TelemetryEvent {
        TelemetryEvent::DrainStart {
            at: Ps(20),
            writes: 32,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert_eq!(s.detail(), None);
        assert!(!s.wants(TraceDetail::Coarse));
        assert!(!s.wants(TraceDetail::Fine));
        s.record(&fine_event()); // no-op, must not panic
        s.flush().unwrap();
    }

    #[test]
    fn memory_sink_filters_by_detail() {
        let mut fine = MemorySink::new();
        fine.record(&fine_event());
        fine.record(&coarse_event());
        assert_eq!(fine.events.len(), 2);

        let mut coarse = MemorySink::with_detail(TraceDetail::Coarse);
        assert!(coarse.wants(TraceDetail::Coarse));
        assert!(!coarse.wants(TraceDetail::Fine));
        coarse.record(&fine_event()); // above level: dropped even unguarded
        coarse.record(&coarse_event());
        assert_eq!(coarse.events, vec![coarse_event()]);
    }

    #[test]
    fn jsonl_sink_round_trips_through_reader() {
        let mut sink = JsonlSink::new(Vec::new(), TraceDetail::Fine);
        let evs = vec![
            TelemetryEvent::RunMeta {
                workload: "w".into(),
                scheme: "s".into(),
                banks: 8,
            },
            TelemetryEvent::BankBusy {
                at: Ps(5),
                bank: 2,
                kind: OpKind::Read,
                until: Ps(50_005),
                lines: 1,
            },
            fine_event(),
            coarse_event(),
        ];
        for ev in &evs {
            sink.record(ev);
        }
        assert_eq!(sink.written(), 4);
        let bytes = sink.finish().unwrap();
        let back = read_events(&bytes[..]).unwrap();
        assert_eq!(back, evs);
    }

    #[test]
    fn jsonl_sink_coarse_drops_fine_events() {
        let mut sink = JsonlSink::new(Vec::new(), TraceDetail::Coarse);
        sink.record(&fine_event());
        sink.record(&coarse_event());
        assert_eq!(sink.written(), 1);
        let back = read_events(&sink.finish().unwrap()[..]).unwrap();
        assert_eq!(back, vec![coarse_event()]);
    }

    #[test]
    fn reader_skips_blanks_and_names_bad_lines() {
        let good = coarse_event().to_json_string();
        let text = format!("\n{good}\n\n");
        assert_eq!(read_events_str(&text).unwrap().len(), 1);

        let bad = format!("{good}\nnot json\n");
        let err = read_events_str(&bad).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn dyn_and_boxed_sinks_forward() {
        let mut mem = MemorySink::new();
        {
            let dyn_ref: &mut dyn Telemetry = &mut mem;
            let wrapped = dyn_ref; // &mut dyn Telemetry is itself Telemetry
            wrapped.record(&coarse_event());
        }
        let mut boxed: Box<dyn Telemetry> = Box::new(mem);
        boxed.record(&fine_event());
        boxed.flush().unwrap();
    }
}
