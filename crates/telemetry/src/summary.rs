//! Reduce a recorded event stream back into report-ready aggregates:
//! per-bank busy time / utilization and queue-depth percentiles.

use crate::event::{OpKind, TelemetryEvent};
use pcm_types::Ps;

/// Accumulated service activity for one bank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BankUsage {
    /// Total time the bank spent servicing operations (pause-corrected:
    /// an interrupted write only contributes the portion actually run).
    pub busy: Ps,
    /// Read operations issued to the bank.
    pub reads: u64,
    /// Write operations issued to the bank (a batch counts once).
    pub writes: u64,
    /// Cache lines serviced (batches count their packed lines).
    pub lines: u64,
}

/// Everything the `report` subcommand needs, computed in one pass over
/// a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Workload name from the `run_meta` event (empty if absent).
    pub workload: String,
    /// Scheme name from the `run_meta` event (empty if absent).
    pub scheme: String,
    /// Per-bank usage, indexed by flat bank id (length = max bank seen + 1,
    /// or the `run_meta` bank count if larger).
    pub banks: Vec<BankUsage>,
    /// Last timestamp observed (including scheduled completions) —
    /// the denominator for utilization.
    pub span: Ps,
    /// Sorted read-queue depth samples.
    pub read_depths: Vec<u32>,
    /// Sorted write-queue depth samples.
    pub write_depths: Vec<u32>,
    /// Write pauses observed.
    pub pauses: u64,
    /// Paused-write resumes observed.
    pub resumes: u64,
    /// Drain-mode entries observed.
    pub drains: u64,
    /// Batch-pack outcomes observed.
    pub batches: u64,
    /// Write0 jobs stolen into sub-write-unit slack, summed over batches.
    pub stolen_write0s: u64,
    /// Mean current-budget utilization over batch-pack outcomes.
    pub mean_batch_utilization: f64,
    /// Adaptive watermark adjustments observed.
    pub watermark_adjusts: u64,
    /// Writes steered to a less-utilized bank than FIFO order would pick.
    pub steered_writes: u64,
    /// Read-priority windows opened mid-drain.
    pub read_windows: u64,
    /// Front-end requests served to completion (`request_done` events).
    pub served_requests: u64,
    /// Front-end requests shed by admission control (`backpressure`).
    pub shed_requests: u64,
    /// Partition-parallel writes observed (`partition_write` events).
    pub partition_writes: u64,
    /// Sum of the per-write concurrent-partition counts, for the mean
    /// occupancy `partitions_sum / partition_writes`.
    pub partitions_sum: u64,
    /// Lines stored on each coset row, summed over `coset_choice` events.
    pub coset_rows: [u64; 4],
    /// DRAM write-cache read hits (`write_cache_hit` events with a read
    /// kind: a load served out of a cached dirty line).
    pub write_cache_hits: u64,
    /// DRAM write-cache coalesces (`write_cache_hit` events with a write
    /// kind: a store merged into an already-cached dirty line).
    pub write_cache_coalesces: u64,
    /// Write-cache drain bursts observed (`write_cache_drain` events).
    pub write_cache_drains: u64,
    /// Dirty lines pushed to the controller across all drain bursts.
    pub write_cache_drained_lines: u64,
}

/// Nearest-rank percentile of a **sorted** slice (`p` in [0, 1]).
/// Returns 0 for an empty slice. Exact, unlike [`crate::Histogram`].
/// Thin wrapper over the shared [`pcm_types::stats`] machinery.
pub fn percentile(sorted: &[u32], p: f64) -> u32 {
    pcm_types::stats::percentile_sorted(sorted, p).unwrap_or(0)
}

impl TraceSummary {
    /// Aggregate an event stream (the order events were recorded in).
    pub fn from_events(events: &[TelemetryEvent]) -> TraceSummary {
        let mut s = TraceSummary::default();
        // Scheduled end of each bank's current operation, so a pause can
        // retract the not-yet-run tail of a busy interval.
        let mut busy_until: Vec<Ps> = Vec::new();
        let mut util_sum = 0.0f64;

        let bank_mut = |banks: &mut Vec<BankUsage>, busy_until: &mut Vec<Ps>, bank: u32| -> usize {
            let i = bank as usize;
            if banks.len() <= i {
                banks.resize(i + 1, BankUsage::default());
                busy_until.resize(i + 1, Ps::ZERO);
            }
            i
        };

        for ev in events {
            if let Some(at) = ev.at() {
                s.span = s.span.max(at);
            }
            match *ev {
                TelemetryEvent::RunMeta {
                    ref workload,
                    ref scheme,
                    banks,
                } => {
                    s.workload = workload.clone();
                    s.scheme = scheme.clone();
                    if s.banks.len() < banks as usize {
                        s.banks.resize(banks as usize, BankUsage::default());
                        busy_until.resize(banks as usize, Ps::ZERO);
                    }
                }
                TelemetryEvent::BankBusy {
                    at,
                    bank,
                    kind,
                    until,
                    lines,
                } => {
                    let i = bank_mut(&mut s.banks, &mut busy_until, bank);
                    s.banks[i].busy += until.saturating_sub(at);
                    s.banks[i].lines += u64::from(lines);
                    match kind {
                        OpKind::Read => s.banks[i].reads += 1,
                        OpKind::Write => s.banks[i].writes += 1,
                    }
                    busy_until[i] = until;
                    s.span = s.span.max(until);
                }
                TelemetryEvent::WritePause { at, bank, .. } => {
                    s.pauses += 1;
                    let i = bank_mut(&mut s.banks, &mut busy_until, bank);
                    // Retract the part of the interval that never ran.
                    s.banks[i].busy -= busy_until[i].saturating_sub(at);
                    busy_until[i] = at;
                }
                TelemetryEvent::WriteResume { at, bank, until } => {
                    s.resumes += 1;
                    let i = bank_mut(&mut s.banks, &mut busy_until, bank);
                    s.banks[i].busy += until.saturating_sub(at);
                    busy_until[i] = until;
                    s.span = s.span.max(until);
                }
                TelemetryEvent::QueueDepth { reads, writes, .. } => {
                    s.read_depths.push(reads);
                    s.write_depths.push(writes);
                }
                TelemetryEvent::DrainStart { .. } => s.drains += 1,
                TelemetryEvent::DrainStop { .. } | TelemetryEvent::BankIdle { .. } => {}
                TelemetryEvent::WatermarkAdjust { .. } => s.watermark_adjusts += 1,
                TelemetryEvent::WriteSteer { .. } => s.steered_writes += 1,
                TelemetryEvent::ReadWindow { until, .. } => {
                    s.read_windows += 1;
                    s.span = s.span.max(until);
                }
                TelemetryEvent::BatchPack {
                    stolen_write0s,
                    utilization,
                    ..
                } => {
                    s.batches += 1;
                    s.stolen_write0s += u64::from(stolen_write0s);
                    util_sum += utilization;
                }
                TelemetryEvent::RequestDone { .. } => s.served_requests += 1,
                TelemetryEvent::Backpressure { .. } => s.shed_requests += 1,
                TelemetryEvent::PartitionWrite { partitions, .. } => {
                    s.partition_writes += 1;
                    s.partitions_sum += u64::from(partitions);
                }
                TelemetryEvent::WriteCacheHit { kind, .. } => match kind {
                    OpKind::Read => s.write_cache_hits += 1,
                    OpKind::Write => s.write_cache_coalesces += 1,
                },
                TelemetryEvent::WriteCacheDrain { lines, .. } => {
                    s.write_cache_drains += 1;
                    s.write_cache_drained_lines += u64::from(lines);
                }
                TelemetryEvent::CosetChoice {
                    row0,
                    row1,
                    row2,
                    row3,
                    ..
                } => {
                    for (slot, n) in s.coset_rows.iter_mut().zip([row0, row1, row2, row3]) {
                        *slot += u64::from(n);
                    }
                }
            }
        }
        if s.batches > 0 {
            s.mean_batch_utilization = util_sum / s.batches as f64;
        }
        s.read_depths.sort_unstable();
        s.write_depths.sort_unstable();
        s
    }

    /// Fraction of the trace span bank `i` spent busy (0 when the trace
    /// is empty).
    pub fn utilization(&self, bank: usize) -> f64 {
        if self.span == Ps::ZERO {
            return 0.0;
        }
        self.banks
            .get(bank)
            .map(|b| b.busy.as_ps() as f64 / self.span.as_ps() as f64)
            .unwrap_or(0.0)
    }

    /// Combine per-rank summaries into one whole-system view.
    ///
    /// Bank tables concatenate in rank-major order (flat bank id =
    /// `rank * banks_per_rank + local`), depth samples pool and re-sort,
    /// counters sum, the span is the maximum, and the mean batch
    /// utilization re-weights by each rank's batch count. The workload /
    /// scheme labels come from the first non-empty part. Merging a single
    /// summary returns it unchanged.
    pub fn merged(parts: &[TraceSummary]) -> TraceSummary {
        let mut out = TraceSummary::default();
        let mut util_weight = 0.0f64;
        for p in parts {
            if out.workload.is_empty() {
                out.workload = p.workload.clone();
            }
            if out.scheme.is_empty() {
                out.scheme = p.scheme.clone();
            }
            out.banks.extend(p.banks.iter().cloned());
            out.span = out.span.max(p.span);
            out.read_depths.extend_from_slice(&p.read_depths);
            out.write_depths.extend_from_slice(&p.write_depths);
            out.pauses += p.pauses;
            out.resumes += p.resumes;
            out.drains += p.drains;
            out.batches += p.batches;
            out.stolen_write0s += p.stolen_write0s;
            util_weight += p.mean_batch_utilization * p.batches as f64;
            out.watermark_adjusts += p.watermark_adjusts;
            out.steered_writes += p.steered_writes;
            out.read_windows += p.read_windows;
            out.served_requests += p.served_requests;
            out.shed_requests += p.shed_requests;
            out.partition_writes += p.partition_writes;
            out.partitions_sum += p.partitions_sum;
            out.write_cache_hits += p.write_cache_hits;
            out.write_cache_coalesces += p.write_cache_coalesces;
            out.write_cache_drains += p.write_cache_drains;
            out.write_cache_drained_lines += p.write_cache_drained_lines;
            for (slot, n) in out.coset_rows.iter_mut().zip(p.coset_rows) {
                *slot += n;
            }
        }
        if out.batches > 0 {
            out.mean_batch_utilization = util_weight / out.batches as f64;
        }
        out.read_depths.sort_unstable();
        out.write_depths.sort_unstable();
        out
    }

    /// Summarize a rank-tagged event stream (as returned by
    /// [`crate::read_tagged_events`]) into one summary per rank, indexed
    /// by rank. Ranks with no events yield an empty summary, so the
    /// result always spans `0..=max_rank`.
    pub fn by_rank(tagged: &[(u32, TelemetryEvent)]) -> Vec<TraceSummary> {
        let ranks = tagged
            .iter()
            .map(|&(r, _)| r)
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut streams: Vec<Vec<TelemetryEvent>> = vec![Vec::new(); ranks];
        for (rank, ev) in tagged {
            streams[*rank as usize].push(ev.clone());
        }
        streams
            .iter()
            .map(|evs| TraceSummary::from_events(evs))
            .collect()
    }

    /// Mean concurrent-partition occupancy over partition-parallel writes
    /// (0 when the scheme never drove multiple partitions).
    pub fn mean_partition_occupancy(&self) -> f64 {
        if self.partition_writes == 0 {
            0.0
        } else {
            self.partitions_sum as f64 / self.partition_writes as f64
        }
    }

    /// Mean utilization across all banks.
    pub fn mean_utilization(&self) -> f64 {
        if self.banks.is_empty() {
            0.0
        } else {
            (0..self.banks.len())
                .map(|b| self.utilization(b))
                .sum::<f64>()
                / self.banks.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::Ps;

    fn meta(banks: u32) -> TelemetryEvent {
        TelemetryEvent::RunMeta {
            workload: "w".into(),
            scheme: "s".into(),
            banks,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u32> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.5), 7);
    }

    #[test]
    fn busy_time_accumulates_per_bank() {
        let evs = vec![
            meta(2),
            TelemetryEvent::BankBusy {
                at: Ps(0),
                bank: 0,
                kind: OpKind::Read,
                until: Ps(50_000),
                lines: 1,
            },
            TelemetryEvent::BankBusy {
                at: Ps(50_000),
                bank: 0,
                kind: OpKind::Write,
                until: Ps(100_000),
                lines: 2,
            },
            TelemetryEvent::BankIdle {
                at: Ps(100_000),
                bank: 0,
            },
        ];
        let s = TraceSummary::from_events(&evs);
        assert_eq!(s.banks.len(), 2);
        assert_eq!(s.banks[0].busy, Ps(100_000));
        assert_eq!(s.banks[0].reads, 1);
        assert_eq!(s.banks[0].writes, 1);
        assert_eq!(s.banks[0].lines, 3);
        assert_eq!(s.banks[1].busy, Ps::ZERO);
        assert_eq!(s.span, Ps(100_000));
        assert!((s.utilization(0) - 1.0).abs() < 1e-12);
        assert_eq!(s.utilization(1), 0.0);
        assert!((s.mean_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pause_retracts_unrun_tail_and_resume_re_adds() {
        // Write scheduled 0..430ns, paused at 100ns, resumes 150..480ns.
        let evs = vec![
            meta(1),
            TelemetryEvent::BankBusy {
                at: Ps(0),
                bank: 0,
                kind: OpKind::Write,
                until: Ps(430_000),
                lines: 1,
            },
            TelemetryEvent::WritePause {
                at: Ps(100_000),
                bank: 0,
                pauses: 1,
            },
            TelemetryEvent::WriteResume {
                at: Ps(150_000),
                bank: 0,
                until: Ps(480_000),
            },
        ];
        let s = TraceSummary::from_events(&evs);
        // 100ns before the pause + 330ns after the resume.
        assert_eq!(s.banks[0].busy, Ps(430_000));
        assert_eq!(s.pauses, 1);
        assert_eq!(s.resumes, 1);
        assert_eq!(s.span, Ps(480_000));
        assert!(s.utilization(0) < 1.0);
    }

    #[test]
    fn queue_depths_sorted_and_counted() {
        let evs = vec![
            TelemetryEvent::QueueDepth {
                at: Ps(1),
                reads: 9,
                writes: 2,
            },
            TelemetryEvent::QueueDepth {
                at: Ps(2),
                reads: 3,
                writes: 30,
            },
            TelemetryEvent::DrainStart {
                at: Ps(3),
                writes: 32,
            },
            TelemetryEvent::BatchPack {
                at: Ps(4),
                bank: 0,
                lines: 4,
                write_units: 1.5,
                stolen_write0s: 6,
                utilization: 0.5,
            },
            TelemetryEvent::BatchPack {
                at: Ps(5),
                bank: 0,
                lines: 2,
                write_units: 1.0,
                stolen_write0s: 2,
                utilization: 1.0,
            },
        ];
        let s = TraceSummary::from_events(&evs);
        assert_eq!(s.read_depths, vec![3, 9]);
        assert_eq!(s.write_depths, vec![2, 30]);
        assert_eq!(s.drains, 1);
        assert_eq!(s.batches, 2);
        assert_eq!(s.stolen_write0s, 8);
        assert!((s.mean_batch_utilization - 0.75).abs() < 1e-12);
    }

    #[test]
    fn scheduler_events_counted_and_window_extends_span() {
        let evs = vec![
            TelemetryEvent::WatermarkAdjust {
                at: Ps(1_000),
                low: 10,
                high: 24,
            },
            TelemetryEvent::WriteSteer {
                at: Ps(2_000),
                bank: 3,
                over: 0,
            },
            TelemetryEvent::WriteSteer {
                at: Ps(3_000),
                bank: 1,
                over: 0,
            },
            TelemetryEvent::ReadWindow {
                at: Ps(4_000),
                until: Ps(90_000),
            },
        ];
        let s = TraceSummary::from_events(&evs);
        assert_eq!(s.watermark_adjusts, 1);
        assert_eq!(s.steered_writes, 2);
        assert_eq!(s.read_windows, 1);
        assert_eq!(s.span, Ps(90_000), "window end extends the trace span");
    }

    #[test]
    fn merged_concatenates_banks_and_pools_depths() {
        let mut a = TraceSummary::from_events(&[
            meta(2),
            TelemetryEvent::BankBusy {
                at: Ps(0),
                bank: 0,
                kind: OpKind::Read,
                until: Ps(10_000),
                lines: 1,
            },
            TelemetryEvent::QueueDepth {
                at: Ps(1),
                reads: 5,
                writes: 9,
            },
        ]);
        a.drains = 2;
        let b = TraceSummary::from_events(&[
            meta(2),
            TelemetryEvent::BankBusy {
                at: Ps(0),
                bank: 1,
                kind: OpKind::Write,
                until: Ps(40_000),
                lines: 2,
            },
            TelemetryEvent::QueueDepth {
                at: Ps(2),
                reads: 3,
                writes: 1,
            },
        ]);
        let m = TraceSummary::merged(&[a.clone(), b]);
        assert_eq!(m.banks.len(), 4, "rank-major concatenation");
        assert_eq!(m.banks[0].reads, 1);
        assert_eq!(m.banks[3].writes, 1);
        assert_eq!(m.span, Ps(40_000));
        assert_eq!(m.read_depths, vec![3, 5]);
        assert_eq!(m.write_depths, vec![1, 9]);
        assert_eq!(m.drains, 2);
        assert_eq!(m.workload, "w");
        // Single-part merge only re-sorts (already sorted) — equal fields.
        let one = TraceSummary::merged(std::slice::from_ref(&a));
        assert_eq!(one.banks, a.banks);
        assert_eq!(one.read_depths, a.read_depths);
    }

    #[test]
    fn serve_events_counted() {
        let evs = vec![
            TelemetryEvent::RequestDone {
                at: Ps(1_000),
                tenant: 0,
                kind: OpKind::Read,
                latency: Ps(60_000),
            },
            TelemetryEvent::RequestDone {
                at: Ps(2_000),
                tenant: 1,
                kind: OpKind::Write,
                latency: Ps(431_000),
            },
            TelemetryEvent::Backpressure {
                at: Ps(3_000),
                tenant: 1,
                depth: 64,
            },
        ];
        let s = TraceSummary::from_events(&evs);
        assert_eq!(s.served_requests, 2);
        assert_eq!(s.shed_requests, 1);
        assert_eq!(s.span, Ps(3_000));
        let m = TraceSummary::merged(&[s.clone(), s]);
        assert_eq!(m.served_requests, 4);
        assert_eq!(m.shed_requests, 2);
    }

    #[test]
    fn partition_and_coset_events_aggregate() {
        let evs = vec![
            TelemetryEvent::PartitionWrite {
                at: Ps(1_000),
                bank: 0,
                partitions: 4,
                lines: 1,
            },
            TelemetryEvent::PartitionWrite {
                at: Ps(2_000),
                bank: 1,
                partitions: 2,
                lines: 1,
            },
            TelemetryEvent::CosetChoice {
                at: Ps(3_000),
                bank: 0,
                row0: 3,
                row1: 1,
                row2: 0,
                row3: 2,
            },
            TelemetryEvent::CosetChoice {
                at: Ps(4_000),
                bank: 1,
                row0: 1,
                row1: 0,
                row2: 0,
                row3: 0,
            },
        ];
        let s = TraceSummary::from_events(&evs);
        assert_eq!(s.partition_writes, 2);
        assert_eq!(s.partitions_sum, 6);
        assert!((s.mean_partition_occupancy() - 3.0).abs() < 1e-12);
        assert_eq!(s.coset_rows, [4, 1, 0, 2]);
        assert_eq!(s.span, Ps(4_000));
        let m = TraceSummary::merged(&[s.clone(), s]);
        assert_eq!(m.partition_writes, 4);
        assert_eq!(m.coset_rows, [8, 2, 0, 4]);
        assert!((m.mean_partition_occupancy() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn write_cache_events_counted() {
        let evs = vec![
            TelemetryEvent::WriteCacheHit {
                at: Ps(1_000),
                kind: OpKind::Write,
            },
            TelemetryEvent::WriteCacheHit {
                at: Ps(2_000),
                kind: OpKind::Write,
            },
            TelemetryEvent::WriteCacheHit {
                at: Ps(3_000),
                kind: OpKind::Read,
            },
            TelemetryEvent::WriteCacheDrain {
                at: Ps(4_000),
                lines: 12,
                depth: 48,
            },
            TelemetryEvent::WriteCacheDrain {
                at: Ps(5_000),
                lines: 4,
                depth: 16,
            },
        ];
        let s = TraceSummary::from_events(&evs);
        assert_eq!(s.write_cache_coalesces, 2);
        assert_eq!(s.write_cache_hits, 1);
        assert_eq!(s.write_cache_drains, 2);
        assert_eq!(s.write_cache_drained_lines, 16);
        assert_eq!(s.span, Ps(5_000));
        let m = TraceSummary::merged(&[s.clone(), s]);
        assert_eq!(m.write_cache_coalesces, 4);
        assert_eq!(m.write_cache_hits, 2);
        assert_eq!(m.write_cache_drains, 4);
        assert_eq!(m.write_cache_drained_lines, 32);
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let s = TraceSummary::from_events(&[]);
        assert_eq!(s.span, Ps::ZERO);
        assert!(s.banks.is_empty());
        assert_eq!(s.utilization(0), 0.0);
        assert_eq!(s.mean_utilization(), 0.0);
    }
}
