//! # pcm-telemetry
//!
//! Observability for the Tetris Write memory hierarchy. The simulator
//! computes per-bank occupancy, queue residency, and write-pause behaviour
//! internally but — before this crate — only the coarse `SimResult`
//! aggregates survived a run. This crate exposes that internal timeline:
//!
//! * [`TelemetryEvent`] — time-stamped events: bank busy/idle transitions,
//!   queue-depth samples, write pause/resume, drain start/stop, and
//!   batch-pack outcomes (lines packed, write units, Write0 jobs stolen
//!   into sub-write-unit slack, current-budget utilization).
//! * [`Telemetry`] — the sink trait the simulator records into. The
//!   default [`NullSink`] is a no-op the optimizer removes from the hot
//!   path; [`JsonlSink`] streams one JSON object per line to any
//!   `io::Write`; [`MemorySink`] collects events in a `Vec` for tests.
//! * [`Counter`] / [`Histogram`] — stdlib-only aggregation primitives
//!   (the histogram uses logarithmic buckets, so percentile queries stay
//!   O(buckets) regardless of sample count).
//! * [`TraceSummary`] — turns a recorded event stream back into per-bank
//!   utilization and queue-depth percentile tables (the `report`
//!   subcommand of `tetris-experiments` renders these).
//!
//! Like the rest of the workspace this crate is stdlib-only, deterministic,
//! and `#![forbid(unsafe_code)]`. Events serialize via
//! [`pcm_types::JsonCodec`], so a `.jsonl` trace is self-describing and
//! greppable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_sink;
pub mod event;
pub mod sink;
pub mod stats;
pub mod summary;

pub use async_sink::{read_tagged_events, AsyncRankSink, AsyncTraceWriter, RingBufferSink};
pub use event::{OpKind, TelemetryEvent, TraceDetail};
pub use sink::{read_events, read_events_str, JsonlSink, MemorySink, NullSink, Telemetry};
pub use stats::{Counter, Histogram};
pub use summary::{percentile, BankUsage, TraceSummary};
