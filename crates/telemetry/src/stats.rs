//! Aggregation primitives: counters and log-bucketed histograms.
//!
//! These are the building blocks trace consumers aggregate events into.
//! The histogram mirrors the simulator's latency-statistics geometry
//! (power-of-two octaves split into sub-buckets) but is unit-agnostic:
//! it records plain `u64` values, so it serves picosecond latencies and
//! queue depths alike.

use pcm_types::json::field_error;
use pcm_types::{Json, JsonCodec, JsonError};

/// Sub-buckets per power-of-two octave.
const SUB: usize = 4;
/// Octaves covered (values up to 2^48 land in the last octave).
const OCTAVES: usize = 48;
/// Total buckets.
const BUCKETS: usize = OCTAVES * SUB;

/// Map a value to its log-scale bucket.
fn bucket_of(v: u64) -> usize {
    let v = v.max(1);
    let octave = (63 - v.leading_zeros()) as usize;
    let base = 1u64 << octave;
    let sub = ((v - base) * SUB as u64 / base) as usize;
    (octave * SUB + sub).min(BUCKETS - 1)
}

/// Lower edge of a bucket.
fn bucket_floor(b: usize) -> u64 {
    let octave = b / SUB;
    let sub = b % SUB;
    let base = 1u64 << octave;
    base + base * sub as u64 / SUB as u64
}

/// A named monotonic counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    /// Counter name (JSON key `name`).
    pub name: String,
    /// Current value.
    pub value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new(name: impl Into<String>) -> Counter {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Increment by one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Fold another counter in (names must match; debug-asserted).
    pub fn merge(&mut self, other: &Counter) {
        debug_assert_eq!(self.name, other.name);
        self.value += other.value;
    }
}

impl JsonCodec for Counter {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("value", Json::UInt(self.value)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Counter {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| field_error("name"))?
                .to_string(),
            value: v
                .get("value")
                .and_then(Json::as_u64)
                .ok_or_else(|| field_error("value"))?,
        })
    }
}

/// Streaming histogram over `u64` values with logarithmic buckets.
///
/// Percentile queries are approximate (bucket floors, resolution ~25% of
/// the value) but O(buckets) irrespective of sample count; exact min,
/// max, count, and sum are tracked alongside.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum += v;
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        self.buckets[bucket_of(v)] += 1;
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`p` in [0, 1]): the floor of the bucket
    /// containing the `ceil(p · count)`-th smallest sample.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // The first bucket's floor is 1; a recorded 0 lands there.
                return bucket_floor(b).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum += other.sum;
        if !other.buckets.is_empty() {
            if self.buckets.is_empty() {
                self.buckets = vec![0; BUCKETS];
            }
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += b;
            }
        }
    }
}

impl JsonCodec for Histogram {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("min", Json::UInt(self.min)),
            ("max", Json::UInt(self.max)),
            ("buckets", Json::u64_array(&self.buckets)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let u = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        let buckets: Vec<u64> = v
            .get("buckets")
            .and_then(Json::as_array)
            .map(|a| a.iter().filter_map(Json::as_u64).collect())
            .unwrap_or_default();
        Ok(Histogram {
            count: u("count"),
            sum: u("sum"),
            min: u("min"),
            max: u("max"),
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::{prop_assert, propcheck};

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("drains");
        c.incr();
        c.add(4);
        assert_eq!(c.value, 5);
        let mut d = Counter::new("drains");
        d.add(2);
        c.merge(&d);
        assert_eq!(c.value, 7);
        let back = Counter::from_json_str(&c.to_json_string()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn histogram_stream_and_percentiles() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(1_000);
        }
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 8);
        assert_eq!(h.max, 1_000);
        assert_eq!(h.percentile(0.50), 8);
        let p99 = h.percentile(0.99);
        assert!((512..=1_000).contains(&p99), "p99 = {p99}");
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn zero_samples_count_in_first_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(0);
        assert_eq!(h.min, 0);
        // Percentile is clamped to max, so all-zero samples report 0.
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..50 {
            a.record(10);
            b.record(10_000);
        }
        a.merge(&b);
        assert_eq!(a.count, 100);
        assert!(a.percentile(0.25) <= 10);
        assert!(a.percentile(0.75) >= 5_000);
        a.merge(&Histogram::new());
        assert_eq!(a.count, 100);
    }

    #[test]
    fn json_roundtrip_preserves_percentiles() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 9, 100, 40_000, 1 << 40] {
            h.record(v);
        }
        let back = Histogram::from_json_str(&h.to_json_string()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.percentile(0.95), h.percentile(0.95));
    }

    propcheck! {
        /// A percentile is never below min nor above max, and the
        /// histogram survives a JSON round trip bit-for-bit.
        fn percentile_bounded(vals in pcm_types::propcheck::vec_of(0u64..=1 << 50, 1..=64)) {
            let mut h = Histogram::new();
            for &v in &vals {
                h.record(v);
            }
            for p in [0.0, 0.5, 0.95, 1.0] {
                let q = h.percentile(p);
                prop_assert!(q <= h.max, "p{p}: {q} > max {}", h.max);
            }
            let back = Histogram::from_json_str(&h.to_json_string()).unwrap();
            prop_assert!(back == h);
        }
    }
}
