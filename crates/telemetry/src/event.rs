//! Time-stamped simulator events and their JSONL encoding.

use pcm_types::json::field_error;
use pcm_types::{Json, JsonCodec, JsonError, Ps};

/// How much of the event stream a sink wants.
///
/// `Coarse` keeps only the rare, high-signal events (drains, pauses,
/// batch-pack outcomes, run metadata); `Fine` adds the per-operation
/// bank busy/idle transitions and queue-depth samples that per-bank
/// utilization and queue-residency percentiles are computed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceDetail {
    /// Rare events only: run metadata, drain start/stop, write
    /// pause/resume, batch-pack outcomes.
    Coarse,
    /// Everything, including per-operation bank transitions and
    /// queue-depth samples.
    Fine,
}

impl Default for TraceDetail {
    /// `Fine` — per-bank utilization and queue-depth percentiles need the
    /// per-operation events.
    fn default() -> Self {
        TraceDetail::Fine
    }
}

impl TraceDetail {
    /// Parse a CLI-style level name (`"coarse"` / `"fine"`).
    pub fn parse(s: &str) -> Option<TraceDetail> {
        match s {
            "coarse" => Some(TraceDetail::Coarse),
            "fine" => Some(TraceDetail::Fine),
            _ => None,
        }
    }
}

/// What kind of operation occupies a bank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// An array read.
    Read,
    /// A write (single line or batch).
    Write,
}

impl OpKind {
    fn tag(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
    }

    fn from_tag(s: &str) -> Option<OpKind> {
        match s {
            "read" => Some(OpKind::Read),
            "write" => Some(OpKind::Write),
            _ => None,
        }
    }
}

/// One time-stamped observation from the memory hierarchy.
///
/// All timestamps are absolute simulation time in picoseconds ([`Ps`]).
/// Bank indices are flat (`rank * banks_per_rank + bank`), matching the
/// controller's internal numbering.
#[derive(Clone, Debug, PartialEq)]
pub enum TelemetryEvent {
    /// Emitted once at the start of a run: what is being simulated.
    RunMeta {
        /// Workload name (e.g. `"vips"`).
        workload: String,
        /// Write-scheme name (e.g. `"Tetris Write"`).
        scheme: String,
        /// Total flat bank count.
        banks: u32,
    },
    /// A bank began servicing an operation and is busy until `until`.
    BankBusy {
        /// When the operation was issued.
        at: Ps,
        /// Flat bank index.
        bank: u32,
        /// Read or write.
        kind: OpKind,
        /// Scheduled completion time (a later pause may cut this short).
        until: Ps,
        /// Cache lines serviced (>1 for a batched Tetris write).
        lines: u32,
    },
    /// A bank's operation completed and the bank went idle.
    BankIdle {
        /// Completion time.
        at: Ps,
        /// Flat bank index.
        bank: u32,
    },
    /// Controller queue occupancy, sampled after each enqueue.
    QueueDepth {
        /// Sample time.
        at: Ps,
        /// Read-queue depth.
        reads: u32,
        /// Write-queue depth.
        writes: u32,
    },
    /// The write queue filled and the controller entered drain mode.
    DrainStart {
        /// When the drain began.
        at: Ps,
        /// Write-queue depth at drain start.
        writes: u32,
    },
    /// Drain reached the low watermark and normal scheduling resumed.
    DrainStop {
        /// When the drain ended.
        at: Ps,
        /// Write-queue depth at drain stop.
        writes: u32,
    },
    /// An in-flight write was paused to let a read through.
    WritePause {
        /// When the write was interrupted.
        at: Ps,
        /// Flat bank index.
        bank: u32,
        /// How many times this write has now been paused.
        pauses: u32,
    },
    /// A previously paused write resumed.
    WriteResume {
        /// When service resumed (after the pause overhead).
        at: Ps,
        /// Flat bank index.
        bank: u32,
        /// New scheduled completion time.
        until: Ps,
    },
    /// The adaptive scheduling policy recomputed its drain watermarks
    /// from the observed queue-depth percentiles.
    WatermarkAdjust {
        /// When the watermarks changed.
        at: Ps,
        /// New drain-exit (low) watermark.
        low: u32,
        /// New drain-entry (high) watermark.
        high: u32,
    },
    /// Bank steering dispatched a drained write to a less-utilized idle
    /// bank ahead of the strict-FIFO choice.
    WriteSteer {
        /// Issue time.
        at: Ps,
        /// Flat bank index the write went to.
        bank: u32,
        /// The busier bank FIFO order would have serviced first.
        over: u32,
    },
    /// A long drain yielded a bounded read-priority window: banks with
    /// queued reads service those reads before further drain writes.
    ReadWindow {
        /// When the window opened.
        at: Ps,
        /// When write priority resumes.
        until: Ps,
    },
    /// Outcome of packing a batch of writes into one bank service slot
    /// (Tetris inter-line packing).
    BatchPack {
        /// Issue time.
        at: Ps,
        /// Flat bank index.
        bank: u32,
        /// Cache lines packed into the batch.
        lines: u32,
        /// SET-equivalent write units the batch consumed.
        write_units: f64,
        /// Write0 (RESET) jobs stolen into sub-write-unit slack.
        stolen_write0s: u32,
        /// Fraction of the instantaneous current budget used over the
        /// batch's occupied slots.
        utilization: f64,
    },
    /// A partition-parallel write was issued: the scheme drove several
    /// intra-bank partitions concurrently under the shared power budget
    /// (PALP-style plans; never emitted by monolithic-bank schemes).
    PartitionWrite {
        /// Issue time.
        at: Ps,
        /// Flat bank index.
        bank: u32,
        /// Most partitions driven concurrently in any slot of the write.
        partitions: u32,
        /// Cache lines the write serviced (>1 for a batch).
        lines: u32,
    },
    /// Coset-row histogram of a serviced write (batch): how many lines
    /// landed on each row of the 4-row codebook. Flip-bit schemes other
    /// than WIRE always report row 0 (plain inversion).
    CosetChoice {
        /// Issue time.
        at: Ps,
        /// Flat bank index.
        bank: u32,
        /// Lines stored with row 0 (full inversion — classic Flip-N-Write).
        row0: u32,
        /// Lines stored with row 1 (upper-half mask).
        row1: u32,
        /// Lines stored with row 2 (lower-half mask).
        row2: u32,
        /// Lines stored with row 3 (alternating-bit mask).
        row3: u32,
    },
    /// A front-end request completed service (the `pcm-serve` request
    /// loop emits one per request, giving per-tenant latency samples).
    RequestDone {
        /// Completion time.
        at: Ps,
        /// Tenant index the request belongs to.
        tenant: u32,
        /// Read or write request.
        kind: OpKind,
        /// Arrival-to-completion latency.
        latency: Ps,
    },
    /// Admission control shed a request: the bounded ingress queue was
    /// past its watermark, so the request was refused instead of queued.
    Backpressure {
        /// When the request was shed.
        at: Ps,
        /// Tenant index the shed request belonged to.
        tenant: u32,
        /// Ingress-queue depth that triggered the shed.
        depth: u32,
    },
    /// The DRAM write-cache tier served an access from a cached dirty
    /// line: a write coalesced into its frame (`kind = write`) or a read
    /// was answered at DRAM speed (`kind = read`).
    WriteCacheHit {
        /// Access time.
        at: Ps,
        /// Write coalesce or read forward.
        kind: OpKind,
    },
    /// The write cache drained a burst of dirty lines into the controller
    /// write queues (watermark trigger, capacity eviction or final flush).
    WriteCacheDrain {
        /// When the burst completed.
        at: Ps,
        /// Lines handed to the controller in this burst.
        lines: u32,
        /// Frames still dirty after the burst.
        depth: u32,
    },
}

impl TelemetryEvent {
    /// The minimum [`TraceDetail`] at which a sink should keep this event.
    pub fn detail(&self) -> TraceDetail {
        match self {
            TelemetryEvent::BankBusy { .. }
            | TelemetryEvent::BankIdle { .. }
            | TelemetryEvent::QueueDepth { .. }
            | TelemetryEvent::WriteSteer { .. }
            | TelemetryEvent::PartitionWrite { .. }
            | TelemetryEvent::CosetChoice { .. }
            | TelemetryEvent::RequestDone { .. }
            | TelemetryEvent::WriteCacheHit { .. } => TraceDetail::Fine,
            _ => TraceDetail::Coarse,
        }
    }

    /// The event's timestamp, if it has one (`RunMeta` does not).
    pub fn at(&self) -> Option<Ps> {
        match *self {
            TelemetryEvent::RunMeta { .. } => None,
            TelemetryEvent::BankBusy { at, .. }
            | TelemetryEvent::BankIdle { at, .. }
            | TelemetryEvent::QueueDepth { at, .. }
            | TelemetryEvent::DrainStart { at, .. }
            | TelemetryEvent::DrainStop { at, .. }
            | TelemetryEvent::WritePause { at, .. }
            | TelemetryEvent::WriteResume { at, .. }
            | TelemetryEvent::WatermarkAdjust { at, .. }
            | TelemetryEvent::WriteSteer { at, .. }
            | TelemetryEvent::ReadWindow { at, .. }
            | TelemetryEvent::BatchPack { at, .. }
            | TelemetryEvent::PartitionWrite { at, .. }
            | TelemetryEvent::CosetChoice { at, .. }
            | TelemetryEvent::RequestDone { at, .. }
            | TelemetryEvent::Backpressure { at, .. }
            | TelemetryEvent::WriteCacheHit { at, .. }
            | TelemetryEvent::WriteCacheDrain { at, .. } => Some(at),
        }
    }
}

fn get_u64(v: &Json, field: &str) -> Result<u64, JsonError> {
    v.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| field_error(field))
}

fn get_u32(v: &Json, field: &str) -> Result<u32, JsonError> {
    u32::try_from(get_u64(v, field)?).map_err(|_| field_error(field))
}

fn get_ps(v: &Json, field: &str) -> Result<Ps, JsonError> {
    Ok(Ps(get_u64(v, field)?))
}

fn get_f64(v: &Json, field: &str) -> Result<f64, JsonError> {
    v.get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| field_error(field))
}

fn get_str(v: &Json, field: &str) -> Result<String, JsonError> {
    v.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| field_error(field))
}

impl JsonCodec for TelemetryEvent {
    fn to_json(&self) -> Json {
        match self {
            TelemetryEvent::RunMeta {
                workload,
                scheme,
                banks,
            } => Json::obj(vec![
                ("ev", Json::str("run_meta")),
                ("workload", Json::str(workload.clone())),
                ("scheme", Json::str(scheme.clone())),
                ("banks", Json::UInt(u64::from(*banks))),
            ]),
            TelemetryEvent::BankBusy {
                at,
                bank,
                kind,
                until,
                lines,
            } => Json::obj(vec![
                ("ev", Json::str("bank_busy")),
                ("at", Json::UInt(at.0)),
                ("bank", Json::UInt(u64::from(*bank))),
                ("kind", Json::str(kind.tag())),
                ("until", Json::UInt(until.0)),
                ("lines", Json::UInt(u64::from(*lines))),
            ]),
            TelemetryEvent::BankIdle { at, bank } => Json::obj(vec![
                ("ev", Json::str("bank_idle")),
                ("at", Json::UInt(at.0)),
                ("bank", Json::UInt(u64::from(*bank))),
            ]),
            TelemetryEvent::QueueDepth { at, reads, writes } => Json::obj(vec![
                ("ev", Json::str("queue_depth")),
                ("at", Json::UInt(at.0)),
                ("reads", Json::UInt(u64::from(*reads))),
                ("writes", Json::UInt(u64::from(*writes))),
            ]),
            TelemetryEvent::DrainStart { at, writes } => Json::obj(vec![
                ("ev", Json::str("drain_start")),
                ("at", Json::UInt(at.0)),
                ("writes", Json::UInt(u64::from(*writes))),
            ]),
            TelemetryEvent::DrainStop { at, writes } => Json::obj(vec![
                ("ev", Json::str("drain_stop")),
                ("at", Json::UInt(at.0)),
                ("writes", Json::UInt(u64::from(*writes))),
            ]),
            TelemetryEvent::WritePause { at, bank, pauses } => Json::obj(vec![
                ("ev", Json::str("write_pause")),
                ("at", Json::UInt(at.0)),
                ("bank", Json::UInt(u64::from(*bank))),
                ("pauses", Json::UInt(u64::from(*pauses))),
            ]),
            TelemetryEvent::WriteResume { at, bank, until } => Json::obj(vec![
                ("ev", Json::str("write_resume")),
                ("at", Json::UInt(at.0)),
                ("bank", Json::UInt(u64::from(*bank))),
                ("until", Json::UInt(until.0)),
            ]),
            TelemetryEvent::WatermarkAdjust { at, low, high } => Json::obj(vec![
                ("ev", Json::str("watermark_adjust")),
                ("at", Json::UInt(at.0)),
                ("low", Json::UInt(u64::from(*low))),
                ("high", Json::UInt(u64::from(*high))),
            ]),
            TelemetryEvent::WriteSteer { at, bank, over } => Json::obj(vec![
                ("ev", Json::str("write_steer")),
                ("at", Json::UInt(at.0)),
                ("bank", Json::UInt(u64::from(*bank))),
                ("over", Json::UInt(u64::from(*over))),
            ]),
            TelemetryEvent::ReadWindow { at, until } => Json::obj(vec![
                ("ev", Json::str("read_window")),
                ("at", Json::UInt(at.0)),
                ("until", Json::UInt(until.0)),
            ]),
            TelemetryEvent::BatchPack {
                at,
                bank,
                lines,
                write_units,
                stolen_write0s,
                utilization,
            } => Json::obj(vec![
                ("ev", Json::str("batch_pack")),
                ("at", Json::UInt(at.0)),
                ("bank", Json::UInt(u64::from(*bank))),
                ("lines", Json::UInt(u64::from(*lines))),
                ("write_units", Json::Num(*write_units)),
                ("stolen_write0s", Json::UInt(u64::from(*stolen_write0s))),
                ("utilization", Json::Num(*utilization)),
            ]),
            TelemetryEvent::PartitionWrite {
                at,
                bank,
                partitions,
                lines,
            } => Json::obj(vec![
                ("ev", Json::str("partition_write")),
                ("at", Json::UInt(at.0)),
                ("bank", Json::UInt(u64::from(*bank))),
                ("partitions", Json::UInt(u64::from(*partitions))),
                ("lines", Json::UInt(u64::from(*lines))),
            ]),
            TelemetryEvent::CosetChoice {
                at,
                bank,
                row0,
                row1,
                row2,
                row3,
            } => Json::obj(vec![
                ("ev", Json::str("coset_choice")),
                ("at", Json::UInt(at.0)),
                ("bank", Json::UInt(u64::from(*bank))),
                ("row0", Json::UInt(u64::from(*row0))),
                ("row1", Json::UInt(u64::from(*row1))),
                ("row2", Json::UInt(u64::from(*row2))),
                ("row3", Json::UInt(u64::from(*row3))),
            ]),
            TelemetryEvent::RequestDone {
                at,
                tenant,
                kind,
                latency,
            } => Json::obj(vec![
                ("ev", Json::str("request_done")),
                ("at", Json::UInt(at.0)),
                ("tenant", Json::UInt(u64::from(*tenant))),
                ("kind", Json::str(kind.tag())),
                ("latency", Json::UInt(latency.0)),
            ]),
            TelemetryEvent::Backpressure { at, tenant, depth } => Json::obj(vec![
                ("ev", Json::str("backpressure")),
                ("at", Json::UInt(at.0)),
                ("tenant", Json::UInt(u64::from(*tenant))),
                ("depth", Json::UInt(u64::from(*depth))),
            ]),
            TelemetryEvent::WriteCacheHit { at, kind } => Json::obj(vec![
                ("ev", Json::str("write_cache_hit")),
                ("at", Json::UInt(at.0)),
                ("kind", Json::str(kind.tag())),
            ]),
            TelemetryEvent::WriteCacheDrain { at, lines, depth } => Json::obj(vec![
                ("ev", Json::str("write_cache_drain")),
                ("at", Json::UInt(at.0)),
                ("lines", Json::UInt(u64::from(*lines))),
                ("depth", Json::UInt(u64::from(*depth))),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let tag = get_str(v, "ev")?;
        match tag.as_str() {
            "run_meta" => Ok(TelemetryEvent::RunMeta {
                workload: get_str(v, "workload")?,
                scheme: get_str(v, "scheme")?,
                banks: get_u32(v, "banks")?,
            }),
            "bank_busy" => Ok(TelemetryEvent::BankBusy {
                at: get_ps(v, "at")?,
                bank: get_u32(v, "bank")?,
                kind: get_str(v, "kind")
                    .ok()
                    .as_deref()
                    .and_then(OpKind::from_tag)
                    .ok_or_else(|| field_error("kind"))?,
                until: get_ps(v, "until")?,
                lines: get_u32(v, "lines")?,
            }),
            "bank_idle" => Ok(TelemetryEvent::BankIdle {
                at: get_ps(v, "at")?,
                bank: get_u32(v, "bank")?,
            }),
            "queue_depth" => Ok(TelemetryEvent::QueueDepth {
                at: get_ps(v, "at")?,
                reads: get_u32(v, "reads")?,
                writes: get_u32(v, "writes")?,
            }),
            "drain_start" => Ok(TelemetryEvent::DrainStart {
                at: get_ps(v, "at")?,
                writes: get_u32(v, "writes")?,
            }),
            "drain_stop" => Ok(TelemetryEvent::DrainStop {
                at: get_ps(v, "at")?,
                writes: get_u32(v, "writes")?,
            }),
            "write_pause" => Ok(TelemetryEvent::WritePause {
                at: get_ps(v, "at")?,
                bank: get_u32(v, "bank")?,
                pauses: get_u32(v, "pauses")?,
            }),
            "write_resume" => Ok(TelemetryEvent::WriteResume {
                at: get_ps(v, "at")?,
                bank: get_u32(v, "bank")?,
                until: get_ps(v, "until")?,
            }),
            "watermark_adjust" => Ok(TelemetryEvent::WatermarkAdjust {
                at: get_ps(v, "at")?,
                low: get_u32(v, "low")?,
                high: get_u32(v, "high")?,
            }),
            "write_steer" => Ok(TelemetryEvent::WriteSteer {
                at: get_ps(v, "at")?,
                bank: get_u32(v, "bank")?,
                over: get_u32(v, "over")?,
            }),
            "read_window" => Ok(TelemetryEvent::ReadWindow {
                at: get_ps(v, "at")?,
                until: get_ps(v, "until")?,
            }),
            "batch_pack" => Ok(TelemetryEvent::BatchPack {
                at: get_ps(v, "at")?,
                bank: get_u32(v, "bank")?,
                lines: get_u32(v, "lines")?,
                write_units: get_f64(v, "write_units")?,
                stolen_write0s: get_u32(v, "stolen_write0s")?,
                utilization: get_f64(v, "utilization")?,
            }),
            "partition_write" => Ok(TelemetryEvent::PartitionWrite {
                at: get_ps(v, "at")?,
                bank: get_u32(v, "bank")?,
                partitions: get_u32(v, "partitions")?,
                lines: get_u32(v, "lines")?,
            }),
            "coset_choice" => Ok(TelemetryEvent::CosetChoice {
                at: get_ps(v, "at")?,
                bank: get_u32(v, "bank")?,
                row0: get_u32(v, "row0")?,
                row1: get_u32(v, "row1")?,
                row2: get_u32(v, "row2")?,
                row3: get_u32(v, "row3")?,
            }),
            "request_done" => Ok(TelemetryEvent::RequestDone {
                at: get_ps(v, "at")?,
                tenant: get_u32(v, "tenant")?,
                kind: get_str(v, "kind")
                    .ok()
                    .as_deref()
                    .and_then(OpKind::from_tag)
                    .ok_or_else(|| field_error("kind"))?,
                latency: get_ps(v, "latency")?,
            }),
            "backpressure" => Ok(TelemetryEvent::Backpressure {
                at: get_ps(v, "at")?,
                tenant: get_u32(v, "tenant")?,
                depth: get_u32(v, "depth")?,
            }),
            "write_cache_hit" => Ok(TelemetryEvent::WriteCacheHit {
                at: get_ps(v, "at")?,
                kind: get_str(v, "kind")
                    .ok()
                    .as_deref()
                    .and_then(OpKind::from_tag)
                    .ok_or_else(|| field_error("kind"))?,
            }),
            "write_cache_drain" => Ok(TelemetryEvent::WriteCacheDrain {
                at: get_ps(v, "at")?,
                lines: get_u32(v, "lines")?,
                depth: get_u32(v, "depth")?,
            }),
            other => Err(JsonError {
                offset: 0,
                msg: format!("unknown telemetry event tag `{other}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_types::{prop_assert_eq, propcheck};

    fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            TelemetryEvent::RunMeta {
                workload: "vips".into(),
                scheme: "Tetris Write".into(),
                banks: 32,
            },
            TelemetryEvent::BankBusy {
                at: Ps(1_000),
                bank: 3,
                kind: OpKind::Write,
                until: Ps(431_000),
                lines: 4,
            },
            TelemetryEvent::BankIdle {
                at: Ps(431_000),
                bank: 3,
            },
            TelemetryEvent::QueueDepth {
                at: Ps(2_000),
                reads: 5,
                writes: 17,
            },
            TelemetryEvent::DrainStart {
                at: Ps(3_000),
                writes: 32,
            },
            TelemetryEvent::DrainStop {
                at: Ps(900_000),
                writes: 16,
            },
            TelemetryEvent::WritePause {
                at: Ps(5_000),
                bank: 7,
                pauses: 2,
            },
            TelemetryEvent::WriteResume {
                at: Ps(9_000),
                bank: 7,
                until: Ps(300_000),
            },
            TelemetryEvent::BatchPack {
                at: Ps(10_000),
                bank: 1,
                lines: 4,
                write_units: 1.25,
                stolen_write0s: 9,
                utilization: 0.875,
            },
            TelemetryEvent::WatermarkAdjust {
                at: Ps(11_000),
                low: 12,
                high: 24,
            },
            TelemetryEvent::WriteSteer {
                at: Ps(12_000),
                bank: 5,
                over: 2,
            },
            TelemetryEvent::ReadWindow {
                at: Ps(13_000),
                until: Ps(63_000),
            },
            TelemetryEvent::PartitionWrite {
                at: Ps(13_500),
                bank: 4,
                partitions: 4,
                lines: 1,
            },
            TelemetryEvent::CosetChoice {
                at: Ps(13_600),
                bank: 4,
                row0: 2,
                row1: 0,
                row2: 1,
                row3: 1,
            },
            TelemetryEvent::RequestDone {
                at: Ps(14_000),
                tenant: 1,
                kind: OpKind::Write,
                latency: Ps(431_000),
            },
            TelemetryEvent::Backpressure {
                at: Ps(15_000),
                tenant: 0,
                depth: 64,
            },
            TelemetryEvent::WriteCacheHit {
                at: Ps(16_000),
                kind: OpKind::Write,
            },
            TelemetryEvent::WriteCacheDrain {
                at: Ps(17_000),
                lines: 12,
                depth: 48,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for ev in sample_events() {
            let back = TelemetryEvent::from_json(&ev.to_json()).unwrap();
            assert_eq!(ev, back);
        }
    }

    #[test]
    fn every_variant_round_trips_through_jsonl_text() {
        for ev in sample_events() {
            let line = ev.to_json_string();
            assert!(!line.contains('\n'), "JSONL line must be one line");
            let back = TelemetryEvent::from_json_str(&line).unwrap();
            assert_eq!(ev, back);
        }
    }

    #[test]
    fn detail_classification() {
        use TraceDetail::*;
        for ev in sample_events() {
            let want = match ev {
                TelemetryEvent::BankBusy { .. }
                | TelemetryEvent::BankIdle { .. }
                | TelemetryEvent::QueueDepth { .. }
                | TelemetryEvent::WriteSteer { .. }
                | TelemetryEvent::PartitionWrite { .. }
                | TelemetryEvent::CosetChoice { .. }
                | TelemetryEvent::RequestDone { .. }
                | TelemetryEvent::WriteCacheHit { .. } => Fine,
                _ => Coarse,
            };
            assert_eq!(ev.detail(), want);
        }
        assert!(TraceDetail::Fine > TraceDetail::Coarse);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let v = Json::obj(vec![("ev", Json::str("warp_core_breach"))]);
        assert!(TelemetryEvent::from_json(&v).is_err());
        assert!(TelemetryEvent::from_json(&Json::Null).is_err());
    }

    #[test]
    fn timestamps_and_level_parse() {
        assert_eq!(TraceDetail::parse("fine"), Some(TraceDetail::Fine));
        assert_eq!(TraceDetail::parse("coarse"), Some(TraceDetail::Coarse));
        assert_eq!(TraceDetail::parse("verbose"), None);
        assert_eq!(
            sample_events()[1].at(),
            Some(Ps(1_000)),
            "bank_busy carries its issue time"
        );
        assert_eq!(sample_events()[0].at(), None, "run_meta is untimed");
    }

    propcheck! {
        fn queue_depth_roundtrip(at in 0u64..=u64::MAX / 2, r in 0u64..=64, w in 0u64..=64) {
            let ev = TelemetryEvent::QueueDepth {
                at: Ps(at),
                reads: r as u32,
                writes: w as u32,
            };
            prop_assert_eq!(TelemetryEvent::from_json_str(&ev.to_json_string()).unwrap(), ev);
        }
    }
}
